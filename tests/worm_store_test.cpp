// End-to-end protocol tests over the full deployment: write/read/verify in
// every witnessing mode, retention-driven deletion with proofs, litigation
// holds, sliding-window management, compaction, and compliant migration —
// the behavioural form of the paper's §4.2-§4.3.
#include <gtest/gtest.h>

#include "worm/session.hpp"
#include "worm_fixture.hpp"

namespace worm::core {
namespace {

using common::Duration;
using common::to_bytes;
using storage::ShredPolicy;
using worm::testing::Rig;
using worm::testing::slow_timers_config;

// ---------------------------------------------------------------------------
// Basic write/read/verify
// ---------------------------------------------------------------------------

TEST(WormStore, WriteReadVerifyRoundTrip) {
  Rig rig;
  Sn sn = rig.put("patient chart 1337", Duration::days(30));
  EXPECT_EQ(sn, 1u);

  ReadOutcome res = rig.store.read(sn);
  auto* ok = res.get_if<ReadOk>();
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(common::to_string(ok->payloads.at(0)), "patient chart 1337");
  EXPECT_EQ(ok->vrd.sn, sn);
  EXPECT_EQ(ok->vrd.metasig.kind, SigKind::kStrong);

  Outcome out = rig.verifier.verify_read(sn, res);
  EXPECT_EQ(out.verdict, Verdict::kAuthentic) << out.detail;
}

TEST(WormStore, MultiPayloadVirtualRecord) {
  // A VR groups several data records (e.g. email + attachments) under one SN.
  Rig rig;
  std::vector<common::Bytes> payloads = {
      to_bytes("email body"), to_bytes("attachment-1"), to_bytes("attachment-2")};
  Sn sn = rig.store.write(
      {.payloads = payloads, .attr = rig.attr(Duration::days(365))});

  ReadOutcome res = rig.store.read(sn);
  auto* ok = res.get_if<ReadOk>();
  ASSERT_NE(ok, nullptr);
  ASSERT_EQ(ok->payloads.size(), 3u);
  EXPECT_EQ(ok->vrd.rdl.size(), 3u);
  EXPECT_EQ(rig.verifier.verify_read(sn, res).verdict, Verdict::kAuthentic);
}

TEST(WormStore, SerialNumbersAreConsecutive) {
  Rig rig;
  for (Sn expected = 1; expected <= 20; ++expected) {
    EXPECT_EQ(rig.put("r", Duration::days(1)), expected);
  }
  EXPECT_EQ(rig.firmware.sn_current(), 20u);
}

TEST(WormStore, CreationTimeIsScpuAuthoritative) {
  // The host cannot backdate records: the SCPU stamps creation_time itself.
  Rig rig;
  rig.clock.advance(Duration::hours(5));
  Attr a = rig.attr(Duration::days(1));
  a.creation_time = common::SimTime{-12345};  // host-supplied lie
  common::SimTime before = rig.clock.now();
  Sn sn = rig.store.write({.payloads = {to_bytes("x")}, .attr = a});
  common::SimTime after = rig.clock.now();
  auto res = rig.store.read(sn);
  auto* ok = res.get_if<ReadOk>();
  ASSERT_NE(ok, nullptr);
  // The backdated host timestamp was discarded for the SCPU's own clock.
  EXPECT_GE(ok->vrd.attr.creation_time, before);
  EXPECT_LE(ok->vrd.attr.creation_time, after);
}

TEST(WormStore, ReadOfUnallocatedSnProvesNonExistence) {
  Rig rig;
  rig.put("only record", Duration::days(1));
  ReadOutcome res = rig.store.read(42);
  ASSERT_TRUE(res.is<ReadNotAllocated>());
  Outcome out = rig.verifier.verify_read(42, res);
  EXPECT_EQ(out.verdict, Verdict::kNeverExistedVerified) << out.detail;
}

TEST(WormStore, EmptyStoreAnswersNotAllocated) {
  Rig rig;
  Outcome out = rig.verifier.verify_read(1, rig.store.read(1));
  EXPECT_EQ(out.verdict, Verdict::kNeverExistedVerified) << out.detail;
}

TEST(WormStore, RejectsZeroRetention) {
  Rig rig;
  // Rejected by the device's admission check; surfaces as a channel error.
  EXPECT_THROW(rig.put("r", Duration::nanos(0)), ChannelError);
}

TEST(WormStore, HeartbeatRefreshesAutomatically) {
  // §4.2.1 (ii): the SCPU re-stamps S_s(SN_current) every few minutes even
  // with no updates, so clients never accept stale allocation claims.
  Rig rig;
  auto first = rig.store.latest_heartbeat();
  rig.clock.advance(Duration::minutes(10));
  auto later = rig.store.latest_heartbeat();
  EXPECT_GT(later.stamped_at, first.stamped_at);
  EXPECT_EQ(rig.verifier.verify_read(9, rig.store.read(9)).verdict,
            Verdict::kNeverExistedVerified);
}

// ---------------------------------------------------------------------------
// Retention expiry & secure deletion (§4.2.2)
// ---------------------------------------------------------------------------

TEST(WormStore, RetentionExpiryYieldsDeletionProof) {
  Rig rig;
  Sn sn = rig.put("expiring record", Duration::hours(1));
  rig.clock.advance(Duration::hours(2));

  ReadOutcome res = rig.store.read(sn);
  ASSERT_TRUE(res.is<ReadDeleted>());
  Outcome out = rig.verifier.verify_read(sn, res);
  EXPECT_EQ(out.verdict, Verdict::kDeletedVerified) << out.detail;
  EXPECT_EQ(rig.store.counters().at("store.expirations"), 1u);
}

TEST(WormStore, DeletionShredsDataBlocks) {
  Rig rig;
  Sn sn = rig.put("TOP SECRET CONTENT", Duration::hours(1));
  auto res = rig.store.read(sn);
  auto* ok = res.get_if<ReadOk>();
  ASSERT_NE(ok, nullptr);
  std::uint64_t block = ok->vrd.rdl.at(0).blocks.at(0);

  rig.clock.advance(Duration::hours(2));
  // Zero-fill policy: the physical block holds no residue of the payload.
  const common::Bytes& raw = rig.disk.raw_block(block);
  EXPECT_TRUE(std::all_of(raw.begin(), raw.end(),
                          [](std::uint8_t b) { return b == 0; }));
}

TEST(WormStore, RecordsExpireIndividuallyInOrder) {
  Rig rig;
  Sn a = rig.put("a", Duration::hours(1));
  Sn b = rig.put("b", Duration::hours(3));
  rig.clock.advance(Duration::hours(2));
  EXPECT_TRUE(rig.store.read(a).is<ReadDeleted>());
  EXPECT_TRUE(rig.store.read(b).is<ReadOk>());
  rig.clock.advance(Duration::hours(2));
  EXPECT_TRUE(rig.store.read(b).is<ReadDeleted>());
}

TEST(WormStore, OutOfOrderExpiration) {
  // Later-written records may expire earlier — VEXP is expiry-sorted (§4.2.2).
  Rig rig;
  Sn long_lived = rig.put("keeps", Duration::days(10));
  Sn short_lived = rig.put("goes", Duration::hours(1));
  rig.clock.advance(Duration::hours(2));
  EXPECT_TRUE(rig.store.read(long_lived).is<ReadOk>());
  EXPECT_TRUE(rig.store.read(short_lived).is<ReadDeleted>());
}

TEST(WormStore, MultiYearRetentionSurvives) {
  Rig rig(slow_timers_config());
  Sn sn = rig.put("20-year health record", Duration::years(20));
  rig.clock.advance(Duration::years(19));
  EXPECT_EQ(rig.verifier.verify_read(sn, rig.store.read(sn)).verdict,
            Verdict::kAuthentic);
  rig.clock.advance(Duration::years(2));
  EXPECT_EQ(rig.verifier.verify_read(sn, rig.store.read(sn)).verdict,
            Verdict::kDeletedVerified);
}

class ShredPolicies : public ::testing::TestWithParam<ShredPolicy> {};
INSTANTIATE_TEST_SUITE_P(AllPolicies, ShredPolicies,
                         ::testing::Values(ShredPolicy::kZeroFill,
                                           ShredPolicy::kNist3Pass,
                                           ShredPolicy::kRandom7Pass,
                                           ShredPolicy::kCryptoShred),
                         [](const auto& param_info) {
                           return std::string(storage::to_string(param_info.param))
                                      .substr(0, 4) +
                                  std::to_string(static_cast<int>(param_info.param));
                         });

TEST_P(ShredPolicies, ShreddingRemovesPayloadResidue) {
  Rig rig;
  common::Bytes payload = to_bytes("the incriminating memo, quite long "
                                   "so residue would be recognisable");
  Sn sn = rig.store.write(
      {.payloads = {payload}, .attr = rig.attr(Duration::hours(1), GetParam())});
  auto res = rig.store.read(sn);
  std::uint64_t block = res.get<ReadOk>().vrd.rdl.at(0).blocks.at(0);
  rig.clock.advance(Duration::hours(2));
  const common::Bytes& raw = rig.disk.raw_block(block);
  // No policy may leave the plaintext prefix in place.
  EXPECT_NE(common::to_string(common::ByteView(raw.data(), 20)),
            "the incriminating me");
}

// ---------------------------------------------------------------------------
// Litigation holds (§4.2.2)
// ---------------------------------------------------------------------------

TEST(WormStore, LitigationHoldBlocksDeletion) {
  Rig rig;
  Sn sn = rig.put("under subpoena", Duration::hours(1));
  rig.store.lit_hold({.sn = sn,
                      .lit_id = 7,
                      .hold_until = rig.clock.now() + Duration::days(30),
                      .cred_issued_at = rig.clock.now(),
                      .credential = rig.lit_credential(sn, 7, true)});
  rig.clock.advance(Duration::hours(5));  // retention long past
  ReadOutcome res = rig.store.read(sn);
  ASSERT_TRUE(res.is<ReadOk>());
  EXPECT_TRUE(res.get<ReadOk>().vrd.attr.litigation_hold);
  EXPECT_EQ(rig.verifier.verify_read(sn, res).verdict, Verdict::kAuthentic);
}

TEST(WormStore, LitigationReleaseAllowsDeletion) {
  Rig rig;
  Sn sn = rig.put("under subpoena", Duration::hours(1));
  rig.store.lit_hold({.sn = sn,
                      .lit_id = 7,
                      .hold_until = rig.clock.now() + Duration::days(30),
                      .cred_issued_at = rig.clock.now(),
                      .credential = rig.lit_credential(sn, 7, true)});
  rig.clock.advance(Duration::hours(5));
  rig.store.lit_release({.sn = sn,
                         .lit_id = 7,
                         .cred_issued_at = rig.clock.now(),
                         .credential = rig.lit_credential(sn, 7, false)});
  // Retention already lapsed, so deletion is due immediately.
  rig.clock.advance(Duration::seconds(1));
  EXPECT_EQ(rig.verifier.verify_read(sn, rig.store.read(sn)).verdict,
            Verdict::kDeletedVerified);
}

TEST(WormStore, LitigationHoldTimesOutOnItsOwn) {
  Rig rig;
  Sn sn = rig.put("held", Duration::hours(1));
  rig.store.lit_hold({.sn = sn,
                      .lit_id = 9,
                      .hold_until = rig.clock.now() + Duration::hours(10),
                      .cred_issued_at = rig.clock.now(),
                      .credential = rig.lit_credential(sn, 9, true)});
  rig.clock.advance(Duration::hours(5));
  EXPECT_TRUE(rig.store.read(sn).is<ReadOk>());
  rig.clock.advance(Duration::hours(6));  // past the hold timeout
  EXPECT_EQ(rig.verifier.verify_read(sn, rig.store.read(sn)).verdict,
            Verdict::kDeletedVerified);
}

TEST(WormStore, LitHoldRejectsForgedCredential) {
  Rig rig;
  Sn sn = rig.put("target", Duration::days(1));
  // Signed by some other key, not the regulation authority.
  const auto& rogue = scpu::cached_rsa_key(0xbad, 1024);
  common::Bytes forged = crypto::rsa_sign(
      rogue, lit_credential_payload(sn, rig.clock.now(), 7, true));
  EXPECT_THROW(
      rig.store.lit_hold({.sn = sn,
                          .lit_id = 7,
                          .hold_until = rig.clock.now() + Duration::days(1),
                          .cred_issued_at = rig.clock.now(),
                          .credential = forged}),
      ChannelError);
}

TEST(WormStore, LitHoldRejectsCredentialForOtherRecord) {
  Rig rig;
  Sn a = rig.put("a", Duration::days(1));
  Sn b = rig.put("b", Duration::days(1));
  common::Bytes cred_for_a = rig.lit_credential(a, 7, true);
  EXPECT_THROW(
      rig.store.lit_hold({.sn = b,
                          .lit_id = 7,
                          .hold_until = rig.clock.now() + Duration::days(1),
                          .cred_issued_at = rig.clock.now(),
                          .credential = cred_for_a}),
      ChannelError);
}

TEST(WormStore, LitHoldRejectsExpiredCredential) {
  Rig rig(slow_timers_config());
  Sn sn = rig.put("x", Duration::days(30));
  common::SimTime issued = rig.clock.now();
  common::Bytes cred = rig.lit_credential(sn, 7, true);
  rig.clock.advance(Duration::days(3));  // beyond lit_credential_max_age
  EXPECT_THROW(
      rig.store.lit_hold({.sn = sn,
                          .lit_id = 7,
                          .hold_until = rig.clock.now() + Duration::days(9),
                          .cred_issued_at = issued,
                          .credential = cred}),
      ChannelError);
}

TEST(WormStore, LitReleaseRequiresActiveHold) {
  Rig rig;
  Sn sn = rig.put("never held", Duration::days(1));
  EXPECT_THROW(
      rig.store.lit_release({.sn = sn,
                             .lit_id = 7,
                             .cred_issued_at = rig.clock.now(),
                             .credential = rig.lit_credential(sn, 7, false)}),
      ChannelError);
}

// ---------------------------------------------------------------------------
// Sliding window: base advance + compaction (§4.2.1)
// ---------------------------------------------------------------------------

TEST(WormStore, BaseAdvancesOverFullyExpiredPrefix) {
  Rig rig;
  for (int i = 0; i < 5; ++i) rig.put("r", Duration::hours(1));
  Sn live = rig.put("live", Duration::days(30));
  rig.clock.advance(Duration::hours(2));
  ASSERT_TRUE(rig.store.pump_idle());

  EXPECT_EQ(rig.firmware.sn_base(), 6u);
  // Proof entries below the base were expelled from the VRDT...
  EXPECT_EQ(rig.store.vrdt().entry_count(), 1u);
  // ...but reads still produce verifiable absence proofs.
  Outcome out = rig.verifier.verify_read(2, rig.store.read(2));
  EXPECT_EQ(out.verdict, Verdict::kDeletedVerified) << out.detail;
  EXPECT_EQ(rig.verifier.verify_read(live, rig.store.read(live)).verdict,
            Verdict::kAuthentic);
}

TEST(WormStore, CompactionReplacesInteriorRunWithWindow) {
  Rig rig;
  Sn keep_low = rig.put("low", Duration::days(30));
  for (int i = 0; i < 4; ++i) rig.put("mid", Duration::hours(1));
  Sn keep_high = rig.put("high", Duration::days(30));
  rig.clock.advance(Duration::hours(2));
  ASSERT_TRUE(rig.store.pump_idle());

  EXPECT_EQ(rig.store.vrdt().window_count(), 1u);
  EXPECT_EQ(rig.store.vrdt().entry_count(), 2u);  // the two live records
  Outcome out = rig.verifier.verify_read(3, rig.store.read(3));
  EXPECT_EQ(out.verdict, Verdict::kDeletedVerified) << out.detail;
  EXPECT_EQ(rig.verifier.verify_read(keep_low, rig.store.read(keep_low)).verdict,
            Verdict::kAuthentic);
  EXPECT_EQ(rig.verifier.verify_read(keep_high, rig.store.read(keep_high)).verdict,
            Verdict::kAuthentic);
}

TEST(WormStore, ShortRunsAreNotCompacted) {
  // §4.2.1: only runs of 3+ expired records may become windows.
  Rig rig;
  rig.put("low", Duration::days(30));
  rig.put("mid-1", Duration::hours(1));
  rig.put("mid-2", Duration::hours(1));
  rig.put("high", Duration::days(30));
  rig.clock.advance(Duration::hours(2));
  rig.store.pump_idle();
  EXPECT_EQ(rig.store.vrdt().window_count(), 0u);
  // The two deletion proofs stay as individual entries.
  EXPECT_EQ(rig.store.vrdt().entry_count(), 4u);
}

TEST(WormStore, WindowedStoreStorageShrinks) {
  Rig rig;
  rig.put("anchor", Duration::days(365));
  for (int i = 0; i < 50; ++i) rig.put("bulk", Duration::hours(1));
  rig.clock.advance(Duration::hours(2));
  std::size_t before = rig.store.vrdt().storage_bytes();
  while (rig.store.pump_idle()) {
  }
  std::size_t after = rig.store.vrdt().storage_bytes();
  EXPECT_LT(after, before / 4);  // 50 proofs collapsed into one window
}

// ---------------------------------------------------------------------------
// Deferred witnessing & HMAC mode (§4.3)
// ---------------------------------------------------------------------------

TEST(WormStore, DeferredWriteVerifiesUnderShortKey) {
  Rig rig;
  Sn sn = rig.put("burst record", Duration::days(1), WitnessMode::kDeferred);
  ReadOutcome res = rig.store.read(sn);
  auto* ok = res.get_if<ReadOk>();
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->vrd.metasig.kind, SigKind::kShortTerm);
  Outcome out = rig.verifier.verify_read(sn, res);
  EXPECT_EQ(out.verdict, Verdict::kAuthentic) << out.detail;
}

TEST(WormStore, DeferredWriteIsStrengthenedDuringIdle) {
  Rig rig;
  Sn sn = rig.put("burst record", Duration::days(1), WitnessMode::kDeferred);
  EXPECT_EQ(rig.firmware.deferred_count(), 1u);
  ASSERT_TRUE(rig.store.pump_idle());
  EXPECT_EQ(rig.firmware.deferred_count(), 0u);

  ReadOutcome res = rig.store.read(sn);
  auto* ok = res.get_if<ReadOk>();
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->vrd.metasig.kind, SigKind::kStrong);
  EXPECT_EQ(ok->vrd.datasig.kind, SigKind::kStrong);
  EXPECT_EQ(rig.verifier.verify_read(sn, res).verdict, Verdict::kAuthentic);
}

TEST(WormStore, UnstrengthenedShortSigGoesStaleAfterLifetime) {
  // If the store never strengthens (malicious idleness), clients refuse the
  // short-lived witness once its security lifetime has run out.
  Rig rig;
  Sn sn = rig.put("burst record", Duration::days(10), WitnessMode::kDeferred);
  rig.clock.advance(Duration::hours(3));  // > rotation + lifetime
  Outcome out = rig.verifier.verify_read(sn, rig.store.read(sn));
  EXPECT_EQ(out.verdict, Verdict::kStaleProof) << out.detail;
}

TEST(WormStore, StrengthenedRecordSurvivesShortKeyHorizon) {
  Rig rig;
  Sn sn = rig.put("burst record", Duration::days(10), WitnessMode::kDeferred);
  rig.store.pump_idle();
  rig.clock.advance(Duration::hours(3));
  EXPECT_EQ(rig.verifier.verify_read(sn, rig.store.read(sn)).verdict,
            Verdict::kAuthentic);
}

TEST(WormStore, HmacWitnessIsUnverifiableUntilUpgraded) {
  Rig rig;
  Sn sn = rig.put("hmac record", Duration::days(1), WitnessMode::kHmac);
  Outcome out = rig.verifier.verify_read(sn, rig.store.read(sn));
  EXPECT_EQ(out.verdict, Verdict::kUnverifiableYet) << out.detail;

  rig.store.pump_idle();
  EXPECT_EQ(rig.verifier.verify_read(sn, rig.store.read(sn)).verdict,
            Verdict::kAuthentic);
}

TEST(WormStore, MixedModeBurstAllStrengthened) {
  Rig rig;
  std::vector<Sn> sns;
  for (int i = 0; i < 30; ++i) {
    auto mode = i % 3 == 0   ? WitnessMode::kStrong
                : i % 3 == 1 ? WitnessMode::kDeferred
                             : WitnessMode::kHmac;
    sns.push_back(rig.put("r" + std::to_string(i), Duration::days(1), mode));
  }
  EXPECT_EQ(rig.firmware.deferred_count(), 20u);
  while (rig.store.pump_idle()) {
  }
  EXPECT_EQ(rig.firmware.deferred_count(), 0u);
  for (Sn sn : sns) {
    EXPECT_EQ(rig.verifier.verify_read(sn, rig.store.read(sn)).verdict,
              Verdict::kAuthentic);
  }
}

TEST(WormStore, ShortKeyRotatesAcrossEpochs) {
  Rig rig;
  rig.put("epoch-1", Duration::days(10), WitnessMode::kDeferred);
  rig.store.pump_idle();  // pre-generates the spare key
  rig.clock.advance(Duration::minutes(45));  // past short_key_rotation
  Sn sn2 = rig.put("epoch-2", Duration::days(10), WitnessMode::kDeferred);
  EXPECT_GE(rig.firmware.counters().key_rotations, 1u);
  // New epoch's signature verifies through its own certificate.
  auto verifier = rig.fresh_verifier();
  EXPECT_EQ(verifier.verify_read(sn2, rig.store.read(sn2)).verdict,
            Verdict::kAuthentic);
}

// ---------------------------------------------------------------------------
// Batched writes & mailbox scheduling
// ---------------------------------------------------------------------------

TEST(WormStore, WriteBatchPreservesOrderAndVerifies) {
  Rig rig;
  std::vector<WriteRequest> requests;
  for (int i = 0; i < 10; ++i) {
    requests.push_back({.payloads = {to_bytes("batched " + std::to_string(i))},
                        .attr = rig.attr(Duration::days(1 + i))});
  }
  std::vector<Sn> sns = rig.store.write_batch(requests);
  ASSERT_EQ(sns.size(), requests.size());
  for (std::size_t i = 0; i < sns.size(); ++i) {
    EXPECT_EQ(sns[i], i + 1);  // submission order == SN order
    auto res = rig.store.read(sns[i]);
    auto* ok = res.get_if<ReadOk>();
    ASSERT_NE(ok, nullptr);
    EXPECT_EQ(common::to_string(ok->payloads.at(0)),
              "batched " + std::to_string(i));
    EXPECT_EQ(rig.verifier.verify_read(sns[i], res).verdict,
              Verdict::kAuthentic);
  }
}

TEST(WormStore, WriteBatchGroupsByModeAndAmortizesCrossings) {
  Rig rig;
  std::vector<WriteRequest> requests;
  for (int i = 0; i < 12; ++i) {
    // Two mode runs: 6 strong then 6 deferred — two kWriteBatch crossings.
    requests.push_back({.payloads = {to_bytes("r" + std::to_string(i))},
                        .attr = rig.attr(Duration::days(1)),
                        .mode = i < 6 ? WitnessMode::kStrong
                                      : WitnessMode::kDeferred});
  }
  auto before = rig.store.counters();
  std::vector<Sn> sns = rig.store.write_batch(requests);
  auto after = rig.store.counters();
  EXPECT_EQ(after.at("mailbox.batches") - before.at("mailbox.batches"), 2u);
  EXPECT_EQ(after.at("mailbox.batched_writes") -
                before.at("mailbox.batched_writes"),
            12u);
  EXPECT_GE(after.at("mailbox.queue_hwm"), 12u);
  // Mode boundaries respected: 6 strong witnesses, 6 short-term ones.
  for (std::size_t i = 0; i < sns.size(); ++i) {
    auto res = rig.store.read(sns[i]);
    EXPECT_EQ(res.get<ReadOk>().vrd.metasig.kind,
              i < 6 ? SigKind::kStrong : SigKind::kShortTerm);
  }
}

TEST(WormStore, WriteBatchChunksAtMaxBatch) {
  StoreConfig sc;
  sc.mailbox.max_batch = 4;
  Rig rig({}, sc);
  std::vector<WriteRequest> requests(
      10, {.payloads = {to_bytes("x")}, .attr = rig.attr(Duration::days(1))});
  (void)rig.store.write_batch(requests);  // only the crossing count matters
  // ceil(10 / 4) = 3 kWriteBatch crossings.
  EXPECT_EQ(rig.store.counters().at("mailbox.batches"), 3u);
}

TEST(WormStore, DeadlinePressureServicesStrengtheningMidBurst) {
  // §4.3: when a deferred witness's security lifetime is about to lapse, the
  // next foreground write must let the urgent strengthen duty run first.
  core::FirmwareConfig fw = slow_timers_config();
  fw.short_key_rotation = Duration::hours(4);
  fw.short_sig_lifetime = Duration::hours(1);
  Rig rig(fw);
  rig.put("burst", Duration::days(1), WitnessMode::kDeferred);
  EXPECT_FALSE(rig.store.deadline_pressure(Duration::minutes(10)));

  rig.clock.advance(Duration::minutes(55));  // inside the 10-minute margin
  EXPECT_TRUE(rig.store.deadline_pressure(Duration::minutes(10)));

  // The foreground write triggers the urgent duty before witnessing.
  Sn sn = rig.put("foreground", Duration::days(1), WitnessMode::kDeferred);
  EXPECT_GE(rig.store.counters().at("mailbox.urgent_services"), 1u);
  // The first record was strengthened to a permanent signature in time.
  auto res = rig.store.read(1);
  EXPECT_EQ(res.get<ReadOk>().vrd.metasig.kind, SigKind::kStrong);
  // The new write's own deadline is an hour out — no pressure now.
  EXPECT_FALSE(rig.store.deadline_pressure(Duration::minutes(10)));
  EXPECT_EQ(rig.store.read(sn).get<ReadOk>().vrd.metasig.kind,
            SigKind::kShortTerm);
}

TEST(WormStore, WritePathsNeverTouchFirmwareDirectly) {
  // Every write crosses the mailbox: the transport's command counter must
  // account for each of them (plus the constructor's seeding crossings).
  Rig rig;
  auto base = rig.store.counters().at("mailbox.crossings");
  rig.put("one", Duration::days(1));
  rig.put("two", Duration::days(1));
  EXPECT_EQ(rig.store.counters().at("mailbox.crossings"), base + 2);
  // Reads are host-only (§4.2.2): no crossings at all.
  auto before_reads = rig.store.counters().at("mailbox.crossings");
  (void)rig.store.read(1);
  (void)rig.store.read(2);
  (void)rig.store.read(99);  // not allocated — answered from the heartbeat mirror
  EXPECT_EQ(rig.store.counters().at("mailbox.crossings"), before_reads);
}

TEST(WormStore, RequestStructLitigationRoundTrip) {
  // write / lit_hold / lit_release through the request structs (the
  // positional overloads are gone): a hold outlives the retention period,
  // and release hands the record back to the retention clock.
  Rig rig;
  Sn sn = rig.store.write({.payloads = {to_bytes("request structs")},
                          .attr = rig.attr(Duration::hours(1))});
  rig.store.lit_hold({.sn = sn,
                      .lit_id = 7,
                      .hold_until = rig.clock.now() + Duration::days(2),
                      .cred_issued_at = rig.clock.now(),
                      .credential = rig.lit_credential(sn, 7, true)});
  rig.clock.advance(Duration::hours(2));
  EXPECT_TRUE(rig.store.read(sn).is<ReadOk>());
  rig.store.lit_release({.sn = sn,
                         .lit_id = 7,
                         .cred_issued_at = rig.clock.now(),
                         .credential = rig.lit_credential(sn, 7, false)});
  rig.clock.advance(Duration::days(1));
  EXPECT_TRUE(rig.store.read(sn).is<ReadDeleted>());
}

// ---------------------------------------------------------------------------
// Trusted-hash burst model (§4.2.2 "Write")
// ---------------------------------------------------------------------------

TEST(WormStore, HostHashModeAuditsDuringIdle) {
  StoreConfig sc;
  sc.hash_mode = HashMode::kHostHash;
  Rig rig({}, sc);
  Sn sn = rig.put("host hashed", Duration::days(1));
  EXPECT_EQ(rig.firmware.hash_audits_pending(10).size(), 1u);
  EXPECT_EQ(rig.verifier.verify_read(sn, rig.store.read(sn)).verdict,
            Verdict::kAuthentic);

  rig.store.pump_idle();
  EXPECT_TRUE(rig.firmware.hash_audits_pending(10).empty());
  EXPECT_EQ(rig.firmware.counters().hash_audits, 1u);
}

TEST(WormStore, HostHashDeferredStrengthensWithAudit) {
  StoreConfig sc;
  sc.hash_mode = HashMode::kHostHash;
  sc.default_mode = WitnessMode::kDeferred;
  Rig rig({}, sc);
  Sn sn = rig.put("host hashed burst", Duration::days(1));
  while (rig.store.pump_idle()) {
  }
  auto res = rig.store.read(sn);
  EXPECT_EQ(res.get<ReadOk>().vrd.metasig.kind, SigKind::kStrong);
  EXPECT_EQ(rig.verifier.verify_read(sn, res).verdict, Verdict::kAuthentic);
  EXPECT_TRUE(rig.firmware.hash_audits_pending(10).empty());
}

// ---------------------------------------------------------------------------
// VEXP memory pressure (§4.2.2)
// ---------------------------------------------------------------------------

TEST(WormStore, VexpOverflowIsRebuiltAndStillDeletes) {
  core::FirmwareConfig fw;
  fw.vexp_memory_bytes = 24 * 8;  // room for only 8 entries
  Rig rig(fw);
  std::vector<Sn> sns;
  for (int i = 0; i < 30; ++i) sns.push_back(rig.put("r", Duration::hours(1)));
  EXPECT_TRUE(rig.firmware.vexp_incomplete());

  rig.store.pump_idle();  // triggers the VEXP rebuild scan
  rig.clock.advance(Duration::hours(2));
  // Rebuild can itself overflow again; keep pumping as a real host would.
  for (int round = 0; round < 10; ++round) {
    rig.store.pump_idle();
    rig.clock.advance(Duration::minutes(1));
  }
  std::size_t deleted = 0;
  for (Sn sn : sns) {
    auto res = rig.store.read(sn);
    if (!res.is<ReadOk>()) ++deleted;
  }
  EXPECT_EQ(deleted, sns.size());
}

// ---------------------------------------------------------------------------
// Compliant migration (§1)
// ---------------------------------------------------------------------------

TEST(Migration, MovesRecordsAndPreservesExpiry) {
  Rig src;
  Rig dst(core::FirmwareConfig{.seed = 0xd15c}, StoreConfig{.store_id = 2});
  Sn a = src.put("record A", Duration::days(10));
  src.put("record B", Duration::days(20));
  src.clock.advance(Duration::days(4));
  dst.clock.advance(Duration::days(4));

  MigrationReport report = Migrator::migrate(src.store, dst.store, src.verifier);
  ASSERT_TRUE(report.clean());
  EXPECT_EQ(report.migrated(), 2u);
  EXPECT_TRUE(Migrator::verify_report(report, src.store.anchors()));

  // Destination serves authentic reads under ITS OWN anchors.
  ClientVerifier dst_verifier(dst.store.anchors(), dst.clock);
  for (const auto& e : report.entries) {
    Outcome out = dst_verifier.verify_read(e.dest_sn, dst.store.read(e.dest_sn));
    EXPECT_EQ(out.verdict, Verdict::kAuthentic) << out.detail;
  }

  // Record A had 6 days left; it must expire ~6 days later at the dest.
  Sn a_dst = report.entries.at(0).source_sn == a ? report.entries.at(0).dest_sn
                                                 : report.entries.at(1).dest_sn;
  dst.clock.advance(Duration::days(5));
  EXPECT_TRUE(dst.store.read(a_dst).is<ReadOk>());
  dst.clock.advance(Duration::days(2));
  EXPECT_TRUE(dst.store.read(a_dst).is<ReadDeleted>());
}

TEST(Migration, RefusesTamperedSourceRecords) {
  Rig src;
  Rig dst(core::FirmwareConfig{.seed = 0xd15c}, StoreConfig{.store_id = 2});
  Sn good = src.put("good", Duration::days(10));
  Sn bad = src.put("bad", Duration::days(10));
  // Insider rewrites the data blocks of `bad` behind the WORM layer.
  auto res = src.store.read(bad);
  std::uint64_t block = res.get<ReadOk>().vrd.rdl.at(0).blocks.at(0);
  src.disk.raw_block(block)[0] ^= 0xff;

  MigrationReport report = Migrator::migrate(src.store, dst.store, src.verifier);
  EXPECT_EQ(report.migrated(), 1u);
  ASSERT_EQ(report.rejected.size(), 1u);
  EXPECT_EQ(report.rejected.at(0), bad);
  EXPECT_EQ(report.entries.at(0).source_sn, good);
  EXPECT_TRUE(Migrator::verify_report(report, src.store.anchors()));
}

TEST(Migration, LitigationHoldTravelsWithRecord) {
  Rig src;
  Rig dst(core::FirmwareConfig{.seed = 0xd15c}, StoreConfig{.store_id = 2});
  Sn sn = src.put("held", Duration::hours(1));
  src.store.lit_hold({.sn = sn,
                      .lit_id = 7,
                      .hold_until = src.clock.now() + Duration::days(30),
                      .cred_issued_at = src.clock.now(),
                      .credential = src.lit_credential(sn, 7, true)});

  MigrationReport report = Migrator::migrate(src.store, dst.store, src.verifier);
  ASSERT_EQ(report.migrated(), 1u);
  Sn dst_sn = report.entries.at(0).dest_sn;

  // Retention lapses at dest, but the hold must still block deletion there.
  dst.clock.advance(Duration::hours(5));
  auto res = dst.store.read(dst_sn);
  ASSERT_TRUE(res.is<ReadOk>());
  EXPECT_TRUE(res.get<ReadOk>().vrd.attr.litigation_hold);
}

TEST(Migration, TamperedManifestFailsAudit) {
  Rig src;
  Rig dst(core::FirmwareConfig{.seed = 0xd15c}, StoreConfig{.store_id = 2});
  src.put("r1", Duration::days(10));
  src.put("r2", Duration::days(10));
  MigrationReport report = Migrator::migrate(src.store, dst.store, src.verifier);
  ASSERT_TRUE(Migrator::verify_report(report, src.store.anchors()));
  report.entries.pop_back();  // auditor sees a dropped record
  EXPECT_FALSE(Migrator::verify_report(report, src.store.anchors()));
}

// ---------------------------------------------------------------------------
// Tamper response (FIPS 140-2 L4, §2.2)
// ---------------------------------------------------------------------------

TEST(WormStore, TamperResponseKillsTheDevice) {
  Rig rig;
  rig.put("r", Duration::days(1));
  rig.device.trigger_tamper_response();
  // The first crossing after zeroization degrades the store to read-only
  // verified mode; the mutation is refused with the degraded-mode error.
  EXPECT_THROW(rig.put("after tamper", Duration::days(1)),
               common::ReadOnlyStoreError);
  EXPECT_TRUE(rig.store.degraded());
  // Existing records remain client-verifiable (signatures are on disk).
  EXPECT_EQ(rig.verifier.verify_read(1, rig.store.read(1)).verdict,
            Verdict::kAuthentic);
}

TEST(WormStore, ReadsStayTotalAfterTamperResponse) {
  // Reads are host-only; even with the SCPU zeroized, every read returns an
  // answer (possibly an honest failure) rather than throwing.
  Rig rig;
  for (int i = 0; i < 3; ++i) rig.put("r", Duration::hours(1));
  rig.clock.advance(Duration::hours(2));
  while (rig.store.pump_idle()) {
  }
  ASSERT_EQ(rig.firmware.sn_base(), 4u);

  rig.device.trigger_tamper_response();
  // Expire the cached base proof, then read below the base: no throw.
  rig.clock.advance(Duration::hours(2));
  ReadOutcome res = rig.store.read(1);
  // Whatever came back, the client is not fooled: the stale base proof (or
  // explicit failure) is not a trustworthy denial... but it IS an answer.
  Outcome out = rig.verifier.verify_read(1, res);
  EXPECT_TRUE(out.verdict == Verdict::kStaleProof ||
              out.verdict == Verdict::kTampered ||
              out.verdict == Verdict::kDeletedVerified)
      << to_string(out.verdict);
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

TEST(Vrdt, SurvivesSaveLoadRoundTrip) {
  Rig rig;
  rig.put("persisted-1", Duration::days(1));
  rig.put("persisted-2", Duration::hours(1));
  rig.put("persisted-3", Duration::days(1));
  rig.clock.advance(Duration::hours(2));  // middle record now deleted

  std::string path = ::testing::TempDir() + "/vrdt.bin";
  rig.store.vrdt().save(path);
  Vrdt loaded = Vrdt::load(path);
  EXPECT_EQ(loaded.entry_count(), rig.store.vrdt().entry_count());
  EXPECT_EQ(loaded.active_count(), 2u);
  ASSERT_NE(loaded.find(2), nullptr);
  EXPECT_EQ(loaded.find(2)->kind, Vrdt::Entry::Kind::kDeleted);
  // Signatures still verify after the round trip.
  EXPECT_TRUE(rig.verifier
                  .verify_vrd(loaded.find(1)->vrd,
                              {common::to_bytes("persisted-1")})
                  .verdict == Verdict::kAuthentic);
}

// ---------------------------------------------------------------------------
// Epoch attestation: O(1)-amortized freshness
// ---------------------------------------------------------------------------

TEST(WormStore, SteadyStateReadsNeedNoAttestationCrossings) {
  // The epoch cert is the amortized freshness carrier: it rides write-batch
  // acks, so a read-mostly workload with a trickle of writes stays fresh
  // without a single dedicated attestation crossing. Counter-verified: the
  // firmware's heartbeat-signature counter must not move during the read
  // phase. Slow timers keep the background heartbeat alarm out of the way so
  // the counter isolates exactly the crossings the session forces.
  Rig rig(worm::testing::slow_timers_config());
  WormSession session(rig.store, "auditor", rig.clock);
  for (int i = 0; i < 8; ++i) rig.put("seed", Duration::days(30));
  session.sync();
  ASSERT_TRUE(session.epoch_cert().has_value());
  ASSERT_TRUE(session.fresh(session.freshness_horizon()));

  const std::uint64_t hb0 = rig.firmware.counters().heartbeats;
  const std::uint64_t certs0 = rig.firmware.counters().epoch_certs;
  for (int round = 0; round < 6; ++round) {
    rig.clock.advance(rig.firmware.config().epoch_interval +
                      Duration::seconds(1));
    rig.put("tick", Duration::days(30));  // ack piggybacks the rolled cert
    session.sync();
    for (int r = 0; r < 25; ++r) {
      ReadOutcome out = session.read(1 + static_cast<Sn>(r % 8));
      EXPECT_NE(out.get_if<ReadOk>(), nullptr);
      EXPECT_TRUE(session.fresh(session.freshness_horizon()));
    }
  }
  // Zero per-read attestation crossings...
  EXPECT_EQ(rig.firmware.counters().heartbeats, hb0);
  // ...because the epoch cert kept rolling on the write path instead.
  EXPECT_GT(rig.firmware.counters().epoch_certs, certs0);
  EXPECT_EQ(rig.verifier.verify_epoch_cert(*session.epoch_cert()).verdict,
            Verdict::kAuthentic);
}

TEST(WormStore, EpochCertAdoptedFromWriteAcks) {
  Rig rig;
  ASSERT_FALSE(rig.store.latest_epoch_cert().has_value());
  rig.put("first", Duration::days(1));
  std::optional<EpochCert> cert = rig.store.latest_epoch_cert();
  ASSERT_TRUE(cert.has_value());
  EXPECT_EQ(rig.verifier.verify_epoch_cert(*cert).verdict,
            Verdict::kAuthentic);

  // Monotone adoption: after the interval elapses, the next write's ack
  // carries a higher epoch and the store's cache moves with it.
  rig.clock.advance(rig.firmware.config().epoch_interval +
                    Duration::seconds(1));
  rig.put("second", Duration::days(1));
  std::optional<EpochCert> newer = rig.store.latest_epoch_cert();
  ASSERT_TRUE(newer.has_value());
  EXPECT_GT(newer->epoch, cert->epoch);
}

}  // namespace
}  // namespace worm::core
