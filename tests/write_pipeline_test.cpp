// Group-commit write pipeline: write_async tickets, group formation,
// backpressure, read-your-writes across the queue, graceful close vs crash
// shutdown, and lockstep proof-stream equivalence against a synchronous
// uncached reference.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "fault_fixture.hpp"
#include "worm_fixture.hpp"

namespace worm::core {
namespace {

using common::Duration;
using worm::testing::lockstep_store_config;
using worm::testing::outcome_fingerprint;
using worm::testing::Rig;

StoreConfig pipelined(StoreConfig base = {}) {
  base.pipeline.enabled = true;
  return base;
}

TEST(WritePipeline, AsyncTicketsResolveInAdmissionOrder) {
  Rig rig({}, pipelined());
  std::vector<WriteTicket> tickets;
  for (int i = 0; i < 10; ++i) {
    tickets.push_back(rig.store.write_async(
        {.payloads = {common::to_bytes("rec " + std::to_string(i))},
         .attr = rig.attr(Duration::days(30))}));
  }
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_EQ(tickets[i].get(), i + 1) << "tickets resolve in queue order";
  }
  for (Sn sn = 1; sn <= 10; ++sn) {
    EXPECT_EQ(rig.verifier.verify_read(sn, rig.store.read(sn)).verdict,
              Verdict::kAuthentic)
        << "sn " << sn;
  }
  auto counters = rig.store.counters();
  EXPECT_EQ(counters.at("write_pipeline.queued"), 10u);
  EXPECT_GE(counters.at("write_pipeline.batches"), 1u);
  EXPECT_GE(counters.at("write_pipeline.batch_fill_avg"), 1u);
}

TEST(WritePipeline, GroupsFormUnderTheBatchThreshold) {
  // A window of admissions before any ticket wait: the committer takes them
  // as max_batch-sized groups, so crossings are amortized.
  StoreConfig sc = pipelined();
  sc.pipeline.max_batch = 8;
  sc.pipeline.linger = Duration::hours(1);  // only the size threshold fires
  Rig rig({}, sc);
  std::uint64_t crossings0 = rig.store.counters().at("mailbox.crossings");
  std::vector<WriteTicket> tickets;
  for (int i = 0; i < 16; ++i) {
    tickets.push_back(rig.store.write_async(
        {.payloads = {common::to_bytes("g")},
         .attr = rig.attr(Duration::days(30))}));
  }
  for (auto& t : tickets) (void)t.get();
  auto counters = rig.store.counters();
  // 16 writes, groups of 8: two kWriteBatch crossings (plus at most a few
  // incidental duty crossings), never 16 write crossings.
  EXPECT_LE(counters.at("mailbox.crossings") - crossings0, 6u);
  EXPECT_EQ(counters.at("write_pipeline.batch_fill_avg"), 8u);
  EXPECT_EQ(rig.store.counters_snapshot().writes, 16u);
}

TEST(WritePipeline, SyncWriteDelegatesToThePipeline) {
  Rig rig({}, pipelined());
  EXPECT_EQ(rig.put("one", Duration::days(30)), 1u);
  EXPECT_EQ(rig.put("two", Duration::days(30)), 2u);
  EXPECT_EQ(rig.store.counters().at("write_pipeline.queued"), 2u);
  EXPECT_EQ(rig.verifier.verify_read(1, rig.store.read(1)).verdict,
            Verdict::kAuthentic);
}

TEST(WritePipeline, WriteAsyncRequiresThePipeline) {
  Rig rig;  // pipeline off (default)
  EXPECT_THROW((void)rig.store.write_async(
                   {.payloads = {common::to_bytes("x")},
                    .attr = rig.attr(Duration::days(30))}),
               common::PreconditionError);
}

TEST(WritePipeline, ReadYourWritesAnswersUnavailableWhileQueued) {
  // Huge linger + batch thresholds: admissions stay queued until drained.
  StoreConfig sc = pipelined();
  sc.pipeline.linger = Duration::hours(1);
  sc.pipeline.max_batch = 1024;
  Rig rig({}, sc);
  WriteTicket t = rig.store.write_async(
      {.payloads = {common::to_bytes("queued")},
       .attr = rig.attr(Duration::days(30))});

  // The SN this admission will claim is above the mirror; a signed "not
  // allocated" now would be contradicted the moment the group flushes.
  ReadOutcome limbo = rig.store.read(1);
  auto* unavailable = limbo.get_if<ReadUnavailable>();
  ASSERT_NE(unavailable, nullptr) << to_string(limbo.status());
  EXPECT_TRUE(unavailable->retryable);

  rig.store.drain_writes();
  ASSERT_TRUE(t.ready());
  EXPECT_EQ(t.get(), 1u);
  EXPECT_EQ(rig.verifier.verify_read(1, rig.store.read(1)).verdict,
            Verdict::kAuthentic);
}

TEST(WritePipeline, BackpressureStallsAreCountedAndRecover) {
  StoreConfig sc = pipelined();
  sc.pipeline.queue_capacity = 2;
  sc.pipeline.max_batch = 2;
  sc.pipeline.linger = Duration::hours(1);
  Rig rig({}, sc);
  std::vector<WriteTicket> tickets;
  for (int i = 0; i < 12; ++i) {
    // A full queue is itself a flush trigger, so a lone submitter stalls
    // only until the committer takes the current group.
    tickets.push_back(rig.store.write_async(
        {.payloads = {common::to_bytes("bp")},
         .attr = rig.attr(Duration::days(30))}));
  }
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_EQ(tickets[i].get(), i + 1);
  }
  EXPECT_GE(rig.store.counters().at("write_pipeline.backpressure_stalls"), 1u);
}

TEST(WritePipeline, CloseDrainsThenRejectsNewWrites) {
  StoreConfig sc = pipelined();
  sc.pipeline.linger = Duration::hours(1);
  sc.pipeline.max_batch = 1024;
  Rig rig({}, sc);
  WriteTicket t = rig.store.write_async(
      {.payloads = {common::to_bytes("to drain")},
       .attr = rig.attr(Duration::days(30))});
  rig.store.close();
  EXPECT_EQ(t.get(), 1u) << "close() drains, never drops";
  EXPECT_THROW((void)rig.store.write_async(
                   {.payloads = {common::to_bytes("late")},
                    .attr = rig.attr(Duration::days(30))}),
               common::PreconditionError);
}

TEST(WritePipeline, DestructionFailsQueuedTicketsWithTransientError) {
  // Destroying the store without close() is the crash path: queued tickets
  // fail, they do not hang.
  StoreConfig sc = pipelined();
  sc.pipeline.linger = Duration::hours(1);
  sc.pipeline.max_batch = 1024;
  auto rig = std::make_unique<Rig>(core::FirmwareConfig{}, sc);
  WriteTicket t = rig->store.write_async(
      {.payloads = {common::to_bytes("dropped")},
       .attr = rig->attr(Duration::days(30))});
  rig.reset();
  ASSERT_TRUE(t.ready());
  EXPECT_THROW((void)t.get(), common::TransientStorageError);
}

TEST(WritePipeline, RacingWritersAndReadersStayCoherent) {
  // Writers admit through the pipeline while readers sweep the SN space.
  // Every observed outcome must be an honest one — a settled record reads
  // Ok, an unsettled SN reads Unavailable or NotAllocated, and nothing ever
  // reads as Failure (which would claim data loss).
  StoreConfig sc = pipelined();
  sc.pipeline.max_batch = 8;
  Rig rig({}, sc);
  constexpr std::size_t kWriters = 4;
  constexpr std::size_t kPerWriter = 24;
  std::atomic<std::size_t> failures{0};
  std::atomic<bool> stop_readers{false};

  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < kPerWriter; ++i) {
        WriteTicket t = rig.store.write_async(
            {.payloads = {common::to_bytes("race")},
             .attr = rig.attr(Duration::days(30))});
        (void)t.get();
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      Sn sn = 1;
      while (!stop_readers.load(std::memory_order_relaxed)) {
        ReadOutcome out = rig.store.read(sn);
        if (out.is<ReadFailure>()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        sn = sn % (kWriters * kPerWriter) + 1;
      }
    });
  }
  for (std::size_t w = 0; w < kWriters; ++w) threads[w].join();
  stop_readers.store(true, std::memory_order_relaxed);
  for (std::size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  EXPECT_EQ(failures.load(), 0u);
  rig.store.drain_writes();
  for (Sn sn = 1; sn <= kWriters * kPerWriter; ++sn) {
    EXPECT_TRUE(rig.store.read(sn).is<ReadOk>()) << "sn " << sn;
  }
}

TEST(WritePipeline, ProofStreamEquivalentToSynchronousUncachedReference) {
  // Lockstep configs (zero cost models, no transfer charges) pin both clocks
  // at zero, so signatures embed identical timestamps: the pipelined store
  // must produce byte-for-byte the proof stream of a synchronous store with
  // no read cache and no batching.
  StoreConfig async_cfg = pipelined(lockstep_store_config());
  async_cfg.pipeline.max_batch = 4;
  Rig pipelined_rig({}, async_cfg, 32u << 20, scpu::CostModel::zero());

  StoreConfig ref_cfg = lockstep_store_config();
  ref_cfg.read_cache_capacity = 0;  // uncached, unbatched reference
  Rig ref_rig({}, ref_cfg, 32u << 20, scpu::CostModel::zero());

  constexpr std::size_t kRecords = 10;
  std::vector<WriteTicket> tickets;
  for (std::size_t i = 0; i < kRecords; ++i) {
    WriteRequest req{.payloads = {common::to_bytes("eq " + std::to_string(i))},
                     .attr = pipelined_rig.attr(Duration::days(30))};
    tickets.push_back(pipelined_rig.store.write_async(req));
    (void)ref_rig.store.write(req);
  }
  pipelined_rig.store.drain_writes();
  for (std::size_t i = 0; i < kRecords; ++i) {
    EXPECT_EQ(tickets[i].get(), i + 1);
  }

  // Sweep past the written range too: absence proofs must also agree.
  for (Sn sn = 1; sn <= kRecords + 2; ++sn) {
    EXPECT_EQ(outcome_fingerprint(pipelined_rig.store.read(sn)),
              outcome_fingerprint(ref_rig.store.read(sn)))
        << "proof streams diverge at sn " << sn;
  }
}

TEST(WritePipeline, ConfigValidationRejectsBrokenKnobs) {
  StoreConfig bad = pipelined();
  bad.pipeline.queue_capacity = 0;
  EXPECT_THROW(bad.validate(), common::PreconditionError);
  bad = pipelined();
  bad.pipeline.max_batch = 0;
  EXPECT_THROW(bad.validate(), common::PreconditionError);
  bad = pipelined();
  bad.pipeline.max_batch = 4096;  // beyond the wire bound
  EXPECT_THROW(bad.validate(), common::PreconditionError);
  bad = pipelined();
  bad.pipeline.max_bytes = 0;
  EXPECT_THROW(bad.validate(), common::PreconditionError);
  // Off means the knobs are inert: a zeroed config still validates.
  StoreConfig off;
  off.pipeline.queue_capacity = 0;
  off.validate();
}

}  // namespace
}  // namespace worm::core
