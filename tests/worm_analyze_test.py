#!/usr/bin/env python3
"""Tests for tools/worm_analyze.py.

Asserts (a) the real tree analyzes clean on all four passes, (b) each pass
flags its known-bad fixture and accepts its known-good twin, (c) a fixture
that fails to parse yields a diagnostic and exit 2 — not a crash and not a
clean verdict, (d) the per-TU fact cache hits on a second run and is
invalidated when the file changes, (e) mutating a frozen wire value in a
scratch tree fails the wire-abi pass and --update-lock refuses to bless it
until kProtocolVersion is bumped, and (f) the clang AST-JSON walker produces
the shared fact schema from a hand-crafted dump (so the clang backend is
covered even on machines without clang).

Run directly or via ctest (registered as WormAnalyze.Suite).
"""

import json
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ANALYZE = REPO / "tools" / "worm_analyze.py"
FIXTURES = REPO / "tests" / "analyze_fixtures"

sys.path.insert(0, str(REPO / "tools"))
import worm_analyze  # noqa: E402

failures = []


def check(name, cond, detail=""):
    status = "ok" if cond else "FAIL"
    print(f"[{status}] {name}" + (f" — {detail}" if detail and not cond else ""))
    if not cond:
        failures.append(name)


def run_analyze(*args):
    return subprocess.run(
        [sys.executable, str(ANALYZE), "--backend=text", *args],
        capture_output=True, text=True)


def fixture_run(passes, *files):
    return run_analyze("--pass", passes, "--files",
                       *[str(FIXTURES / f) for f in files])


def make_scratch(tmp):
    """Scratch copy of the tree: src/, the ABI lock, and the tool."""
    scratch = Path(tmp) / "repo"
    shutil.copytree(REPO / "src", scratch / "src")
    (scratch / "docs").mkdir()
    shutil.copy(REPO / "docs" / "wire_abi.lock",
                scratch / "docs" / "wire_abi.lock")
    (scratch / "tools").mkdir()
    shutil.copy(ANALYZE, scratch / "tools" / "worm_analyze.py")
    return scratch


def main():
    # (a) the real tree is clean on every pass.
    r = run_analyze("--repo", str(REPO), "--cache-dir", "none")
    check("tree-clean", r.returncode == 0,
          f"rc={r.returncode}\n{r.stdout}{r.stderr}")

    # (b) per-pass seeded violations and their clean twins.
    r = fixture_run("lock-order", "lock_order_bad_a.cpp",
                    "lock_order_bad_b.cpp")
    check("lock-order:bad-flagged",
          r.returncode == 1 and "[lock-order]" in r.stdout
          and "mu_a_" in r.stdout and "mu_b_" in r.stdout,
          f"rc={r.returncode}\n{r.stdout}")
    r = fixture_run("lock-order", "lock_order_good.cpp")
    check("lock-order:good-clean", r.returncode == 0,
          f"rc={r.returncode}\n{r.stdout}")

    r = fixture_run("wire-taint", "taint_bad.cpp")
    check("wire-taint:bad-flagged",
          r.returncode == 1 and "[wire-taint]" in r.stdout
          and r.stdout.count("taint_bad.cpp") >= 2,
          f"rc={r.returncode}\n{r.stdout}")
    r = fixture_run("wire-taint", "taint_good.cpp")
    check("wire-taint:good-clean", r.returncode == 0,
          f"rc={r.returncode}\n{r.stdout}")

    r = fixture_run("journal-ordering", "journal_bad.cpp")
    check("journal:bad-flagged",
          r.returncode == 1 and "[journal-ordering]" in r.stdout
          and r.stdout.count("vrdt_.put_active") == 2,
          f"rc={r.returncode}\n{r.stdout}")
    r = fixture_run("journal-ordering", "journal_good.cpp")
    check("journal:good-clean", r.returncode == 0,
          f"rc={r.returncode}\n{r.stdout}")

    # (c) parse failure: diagnostic naming the file, exit 2, no traceback.
    r = fixture_run("lock-order", "parse_error.cpp")
    check("parse-error:exit2", r.returncode == 2,
          f"rc={r.returncode}\n{r.stdout}{r.stderr}")
    check("parse-error:diagnostic",
          "parse_error.cpp" in r.stderr and "does not parse" in r.stderr
          and "Traceback" not in r.stderr,
          r.stderr)

    # (d) fact cache: second identical run hits the cache; editing the file
    # invalidates it (the verdict must flip, not go stale).
    with tempfile.TemporaryDirectory() as tmp:
        work = Path(tmp) / "case.cpp"
        cache = Path(tmp) / "cache"
        shutil.copy(FIXTURES / "journal_bad.cpp", work)
        args = ("--pass", "journal-ordering", "--files", str(work),
                "--cache-dir", str(cache), "--verbose")
        r1 = run_analyze(*args)
        r2 = run_analyze(*args)
        check("cache:first-miss",
              r1.returncode == 1 and "cache_misses=1" in r1.stderr,
              f"rc={r1.returncode}\n{r1.stderr}")
        check("cache:second-hit",
              r2.returncode == 1 and "cache_hits=1" in r2.stderr,
              f"rc={r2.returncode}\n{r2.stderr}")
        shutil.copy(FIXTURES / "journal_good.cpp", work)
        r3 = run_analyze(*args)
        check("cache:invalidated-on-edit",
              r3.returncode == 0 and "cache_misses=1" in r3.stderr,
              f"rc={r3.returncode}\n{r3.stdout}{r3.stderr}")

    # (e) wire-ABI freeze on a scratch tree.
    with tempfile.TemporaryDirectory() as tmp:
        scratch = make_scratch(tmp)
        proto = scratch / "src" / "server" / "protocol.hpp"
        status_hpp = scratch / "src" / "worm" / "status.hpp"

        r = run_analyze("--repo", str(scratch), "--pass", "wire-abi",
                        "--cache-dir", "none")
        check("abi:scratch-clean", r.returncode == 0,
              f"rc={r.returncode}\n{r.stdout}{r.stderr}")

        # Renumber an existing status value: drift must fail the pass...
        status_hpp.write_text(status_hpp.read_text().replace(
            "kBusy = 64", "kBusy = 99"))
        r = run_analyze("--repo", str(scratch), "--pass", "wire-abi",
                        "--cache-dir", "none")
        check("abi:drift-fails",
              r.returncode == 1 and "kBusy" in r.stdout
              and "64 -> 99" in r.stdout,
              f"rc={r.returncode}\n{r.stdout}")

        # ...and --update-lock must refuse to bless it without a version bump.
        r = run_analyze("--repo", str(scratch), "--pass", "wire-abi",
                        "--update-lock", "--cache-dir", "none")
        check("abi:update-refused-without-bump",
              r.returncode == 1 and "kProtocolVersion" in r.stdout,
              f"rc={r.returncode}\n{r.stdout}")

        # Bump the protocol version: now the regen goes through and the
        # subsequent check is clean.
        proto.write_text(proto.read_text().replace(
            "kProtocolVersion = 4", "kProtocolVersion = 5"))
        r = run_analyze("--repo", str(scratch), "--pass", "wire-abi",
                        "--update-lock", "--cache-dir", "none")
        check("abi:update-after-bump", r.returncode == 0,
              f"rc={r.returncode}\n{r.stdout}{r.stderr}")
        r = run_analyze("--repo", str(scratch), "--pass", "wire-abi",
                        "--cache-dir", "none")
        check("abi:clean-after-regen", r.returncode == 0,
              f"rc={r.returncode}\n{r.stdout}")

        # A purely additive change (new enum entry) is not breaking, but
        # still fails until the lock is regenerated — no silent drift.
        status_hpp.write_text(status_hpp.read_text().replace(
            "kSnMismatch = 69,", "kSnMismatch = 69,\n  kThrottled = 70,"))
        r = run_analyze("--repo", str(scratch), "--pass", "wire-abi",
                        "--cache-dir", "none")
        check("abi:addition-needs-regen",
              r.returncode == 1 and "kThrottled" in r.stdout,
              f"rc={r.returncode}\n{r.stdout}")
        r = run_analyze("--repo", str(scratch), "--pass", "wire-abi",
                        "--update-lock", "--cache-dir", "none")
        check("abi:addition-regen-ok", r.returncode == 0,
              f"rc={r.returncode}\n{r.stdout}{r.stderr}")

    # (f) clang AST-JSON walker: same fact schema from a crafted dump.
    ast = json.loads((FIXTURES / "mini_ast.json").read_text())
    facts = worm_analyze.ClangAstExtractor("mini.cpp", ast).extract()
    fns = {f["qname"]: f for f in facts["functions"]}
    check("clang-walker:functions",
          set(fns) == {"MiniStore::apply", "MiniStore::replay_fold"},
          str(set(fns)))
    apply_events = fns.get("MiniStore::apply", {}).get("events", [])
    acq = [e for e in apply_events if e["kind"] == "acquire"]
    check("clang-walker:guard-acquire",
          len(acq) == 1 and acq[0]["lock"] == "MiniStore::mu_",
          str(apply_events))
    calls = [e for e in apply_events if e["kind"] == "call"]
    check("clang-walker:mutation-call",
          any(e["callee"] == "put_active" and e["recv"] == "vrdt_"
              for e in calls),
          str(calls))
    prog = worm_analyze.build_program([("mini.cpp", facts)])
    findings = worm_analyze.pass_journal_ordering(prog)
    check("clang-walker:journal-finding",
          len(findings) == 1 and findings[0].line == 14,
          "; ".join(str(f) for f in findings))
    # The replay fold in the crafted AST is exempt — only apply() fires.
    check("clang-walker:replay-exempt",
          all("replay_fold" not in str(f) for f in findings),
          "; ".join(str(f) for f in findings))

    if failures:
        print(f"\n{len(failures)} check(s) failed: {', '.join(failures)}")
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
