// Merkle tree tests: proofs verify, tampering is caught, update semantics,
// and the O(log n) hash-op growth that motivates the paper's O(1) windowed
// alternative.
#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "crypto/merkle.hpp"

namespace worm::crypto {
namespace {

using common::to_bytes;

common::Bytes leaf(std::size_t i) {
  return to_bytes("leaf-" + std::to_string(i));
}

TEST(Merkle, EmptyTreeHasStableRoot) {
  MerkleTree a, b;
  EXPECT_EQ(a.root(), b.root());
  EXPECT_EQ(a.size(), 0u);
}

TEST(Merkle, SingleLeafRootIsLeafHash) {
  MerkleTree t;
  t.append(leaf(0));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(MerkleTree::verify(t.root(), 0, leaf(0), t.prove(0)));
}

TEST(Merkle, AppendChangesRoot) {
  MerkleTree t;
  t.append(leaf(0));
  auto r1 = t.root();
  t.append(leaf(1));
  EXPECT_NE(t.root(), r1);
}

class MerkleSizes : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(TreeShapes, MerkleSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                                           33, 100),
                         [](const auto& param_info) {
                           return "n" + std::to_string(param_info.param);
                         });

TEST_P(MerkleSizes, AllProofsVerify) {
  MerkleTree t;
  for (std::size_t i = 0; i < GetParam(); ++i) t.append(leaf(i));
  for (std::size_t i = 0; i < GetParam(); ++i) {
    EXPECT_TRUE(MerkleTree::verify(t.root(), i, leaf(i), t.prove(i)))
        << "leaf " << i << " of " << GetParam();
  }
}

TEST_P(MerkleSizes, WrongLeafFailsProof) {
  MerkleTree t;
  for (std::size_t i = 0; i < GetParam(); ++i) t.append(leaf(i));
  for (std::size_t i = 0; i < GetParam(); ++i) {
    EXPECT_FALSE(
        MerkleTree::verify(t.root(), i, to_bytes("forged"), t.prove(i)));
  }
}

TEST_P(MerkleSizes, IncrementalRootMatchesRebuild) {
  MerkleTree incremental, rebuilt;
  for (std::size_t i = 0; i < GetParam(); ++i) incremental.append(leaf(i));
  for (std::size_t i = 0; i < GetParam(); ++i) rebuilt.append(leaf(i));
  EXPECT_EQ(incremental.root(), rebuilt.root());
}

TEST(Merkle, UpdateChangesOnlyThatLeafsValidity) {
  MerkleTree t;
  for (std::size_t i = 0; i < 10; ++i) t.append(leaf(i));
  auto old_root = t.root();
  t.update(4, to_bytes("rewritten"));
  EXPECT_NE(t.root(), old_root);
  EXPECT_TRUE(MerkleTree::verify(t.root(), 4, to_bytes("rewritten"), t.prove(4)));
  EXPECT_FALSE(MerkleTree::verify(t.root(), 4, leaf(4), t.prove(4)));
  // Other leaves still verify under the new root.
  for (std::size_t i = 0; i < 10; ++i) {
    if (i == 4) continue;
    EXPECT_TRUE(MerkleTree::verify(t.root(), i, leaf(i), t.prove(i)));
  }
}

TEST(Merkle, UpdateThenRestoreRestoresRoot) {
  MerkleTree t;
  for (std::size_t i = 0; i < 9; ++i) t.append(leaf(i));
  auto original = t.root();
  t.update(3, to_bytes("temp"));
  t.update(3, leaf(3));
  EXPECT_EQ(t.root(), original);
}

TEST(Merkle, OutOfRangeThrows) {
  MerkleTree t;
  t.append(leaf(0));
  EXPECT_THROW(t.prove(1), common::PreconditionError);
  EXPECT_THROW(t.update(1, leaf(1)), common::PreconditionError);
}

TEST(Merkle, ProofAgainstWrongRootFails) {
  MerkleTree t1, t2;
  for (std::size_t i = 0; i < 8; ++i) t1.append(leaf(i));
  for (std::size_t i = 0; i < 8; ++i) t2.append(to_bytes("other-" + std::to_string(i)));
  EXPECT_FALSE(MerkleTree::verify(t2.root(), 0, leaf(0), t1.prove(0)));
}

TEST(Merkle, ProofSizeIsLogarithmic) {
  MerkleTree t;
  for (std::size_t i = 0; i < 1024; ++i) t.append(leaf(i));
  EXPECT_EQ(t.prove(0).size(), 10u);  // log2(1024)
}

TEST(Merkle, UpdateHashOpsAreLogarithmic) {
  // This is the paper's core complaint about Merkle authentication: each
  // update costs O(log n) hash invocations inside the slow SCPU.
  MerkleTree t;
  for (std::size_t i = 0; i < 4096; ++i) t.append(leaf(i));
  t.reset_hash_ops();
  t.update(2048, to_bytes("x"));
  std::uint64_t ops = t.hash_ops();
  EXPECT_GE(ops, 12u);  // ~log2(4096) node recomputations + leaf hash
  EXPECT_LE(ops, 14u);
}

}  // namespace
}  // namespace worm::crypto
