// Block-level WORM interface tests: write-once enforcement, verified reads,
// tamper detection through the block interface, and retention at block
// granularity.
#include <gtest/gtest.h>

#include "adversary/mallory.hpp"
#include "worm/block_worm.hpp"
#include "worm_fixture.hpp"

namespace worm::core {
namespace {

using common::Bytes;
using common::Duration;
using worm::testing::Rig;

struct BlockRig : Rig {
  BlockRig() : dev(store, /*logical_blocks=*/16, /*block_size=*/512,
                   Duration::days(30)) {}
  WormBlockDevice dev;
};

Bytes block_data(std::uint8_t fill) { return Bytes(512, fill); }

TEST(BlockWorm, WriteOnceReadVerified) {
  BlockRig rig;
  rig.dev.write_block(3, block_data(0xab));
  EXPECT_TRUE(rig.dev.is_written(3));
  EXPECT_FALSE(rig.dev.is_written(4));
  auto r = rig.dev.read_block(3, rig.verifier);
  EXPECT_EQ(r.outcome.verdict, Verdict::kAuthentic);
  EXPECT_EQ(r.data, block_data(0xab));
}

TEST(BlockWorm, RewriteRefused) {
  BlockRig rig;
  rig.dev.write_block(0, block_data(1));
  EXPECT_THROW(rig.dev.write_block(0, block_data(2)),
               common::PreconditionError);
  // Original content is untouched.
  EXPECT_EQ(rig.dev.read_block(0, rig.verifier).data, block_data(1));
}

TEST(BlockWorm, BoundsAndSizeChecks) {
  BlockRig rig;
  EXPECT_THROW(rig.dev.write_block(16, block_data(0)),
               common::PreconditionError);
  EXPECT_THROW(rig.dev.write_block(0, Bytes(511, 0)),
               common::PreconditionError);
  EXPECT_THROW(rig.dev.read_block(99, rig.verifier),
               common::PreconditionError);
}

TEST(BlockWorm, UnwrittenBlockIsNotAuthentic) {
  BlockRig rig;
  auto r = rig.dev.read_block(7, rig.verifier);
  EXPECT_NE(r.outcome.verdict, Verdict::kAuthentic);
  EXPECT_TRUE(r.data.empty());
}

TEST(BlockWorm, UnderlyingTamperDetectedThroughBlockInterface) {
  BlockRig rig;
  rig.dev.write_block(5, block_data(0x77));
  Sn sn = *rig.dev.sn_of(5);
  adversary::tamper_record_data(rig.store, rig.disk, sn);
  auto r = rig.dev.read_block(5, rig.verifier);
  EXPECT_EQ(r.outcome.verdict, Verdict::kTampered);
  EXPECT_TRUE(r.data.empty());
}

TEST(BlockWorm, RetentionExpiresBlocksWithProof) {
  Rig base;
  WormBlockDevice dev(base.store, 4, 512, Duration::hours(1));
  dev.write_block(0, block_data(0x42));
  base.clock.advance(Duration::hours(2));
  auto r = dev.read_block(0, base.verifier);
  EXPECT_EQ(r.outcome.verdict, Verdict::kDeletedVerified);
  // And the slot stays consumed: WORM address space is never recycled.
  EXPECT_THROW(dev.write_block(0, block_data(1)), common::PreconditionError);
}

TEST(BlockWorm, FullDeviceFill) {
  BlockRig rig;
  for (std::size_t i = 0; i < rig.dev.block_count(); ++i) {
    rig.dev.write_block(i, block_data(static_cast<std::uint8_t>(i)));
  }
  for (std::size_t i = 0; i < rig.dev.block_count(); ++i) {
    auto r = rig.dev.read_block(i, rig.verifier);
    EXPECT_EQ(r.outcome.verdict, Verdict::kAuthentic);
    EXPECT_EQ(r.data, block_data(static_cast<std::uint8_t>(i)));
  }
}

}  // namespace
}  // namespace worm::core
