// Crash-consistent host recovery: the write-ahead journal replays host soft
// state after the process dies, pending intents are resent exactly-once
// through the device's (seq, crc) response cache, torn tails are tolerated,
// and a store rebooting against a zeroized SCPU comes up degraded instead of
// failing.
#include <gtest/gtest.h>

#include "fault_fixture.hpp"

namespace worm::core {
namespace {

using common::Duration;
using common::FaultKind;
using worm::testing::CrashRig;

TEST(Recovery, JournaledStoreSurvivesACrash) {
  CrashRig rig("recovery_basic.wal");
  Sn s1 = rig.put("first", Duration::days(30));
  Sn s2 = rig.put("second", Duration::days(30));
  Sn s3 = rig.put("third", Duration::days(30));

  auto report = rig.crash_and_recover();
  EXPECT_GE(report.replayed, 3u);
  EXPECT_EQ(report.resent, 0u);
  EXPECT_FALSE(report.torn_tail);

  ClientVerifier verifier = rig.verifier();
  for (Sn sn : {s1, s2, s3}) {
    ReadOutcome res = rig.store->read(sn);
    EXPECT_EQ(verifier.verify_read(sn, res).verdict, Verdict::kAuthentic)
        << "sn " << sn;
  }
  // Sequencing continues seamlessly: the next write gets the next SN.
  EXPECT_EQ(rig.put("fourth", Duration::days(30)), 4u);
  EXPECT_GT(rig.store->counters().at("recovery.replayed"), 0u);
}

TEST(Recovery, UnjournaledStoreRefusesRecover) {
  CrashRig rig("");
  EXPECT_THROW((void)rig.store->recover(), common::PreconditionError);
}

TEST(Recovery, PendingIntentResentExactlyOnce) {
  // The device executes a write but every response delivery is lost: the
  // host times out with a journaled intent still pending. Recovery resends
  // the exact frame; the dedup cache answers without executing again.
  CrashRig rig("recovery_pending.wal");
  std::uint64_t executed_before = rig.firmware.counters().writes;
  rig.fault.arm("channel.response", {.kind = FaultKind::kDrop});
  EXPECT_THROW((void)rig.put("in flight", Duration::days(30)),
               ChannelTimeoutError);
  rig.fault.disarm_all();
  // Executed once on the device, invisible to the host so far.
  EXPECT_EQ(rig.firmware.counters().writes, executed_before + 1);
  EXPECT_EQ(rig.firmware.sn_current(), 1u);

  // Before recovery reconciles, a read of the in-flight SN is honest about
  // the uncertainty: unavailable (retryable), never a tampering verdict.
  ReadOutcome limbo = rig.store->read(1);
  auto* gone = limbo.get_if<ReadUnavailable>();
  ASSERT_NE(gone, nullptr) << to_string(limbo.status());
  EXPECT_TRUE(gone->retryable);

  auto report = rig.crash_and_recover();
  EXPECT_EQ(report.resent, 1u);
  EXPECT_EQ(report.abandoned, 0u);
  ASSERT_EQ(report.recovered_sns.size(), 1u);
  EXPECT_EQ(report.recovered_sns[0], 1u);
  // Still exactly one execution — the resend was a cache hit.
  EXPECT_EQ(rig.firmware.counters().writes, executed_before + 1);

  ClientVerifier verifier = rig.verifier();
  EXPECT_EQ(verifier.verify_read(1, rig.store->read(1)).verdict,
            Verdict::kAuthentic);
  EXPECT_EQ(rig.put("next", Duration::days(30)), 2u);
  EXPECT_GT(rig.store->counters().at("recovery.resent"), 0u);
}

TEST(Recovery, TornJournalTailIsDiscardedNotFatal) {
  CrashRig rig("recovery_torn.wal");
  Sn s1 = rig.put("durable 1", Duration::days(30));
  Sn s2 = rig.put("durable 2", Duration::days(30));
  // The next intent append tears mid-frame — a power cut during the write.
  rig.fault.schedule("journal.append", FaultKind::kTorn, 1);
  EXPECT_THROW((void)rig.put("torn away", Duration::days(30)),
               common::TransientStorageError);
  rig.fault.disarm_all();

  auto report = rig.crash_and_recover();
  EXPECT_TRUE(report.torn_tail);
  EXPECT_GT(report.torn_bytes, 0u);

  ClientVerifier verifier = rig.verifier();
  EXPECT_EQ(verifier.verify_read(s1, rig.store->read(s1)).verdict,
            Verdict::kAuthentic);
  EXPECT_EQ(verifier.verify_read(s2, rig.store->read(s2)).verdict,
            Verdict::kAuthentic);
  // The torn intent never crossed: SN 3 was never issued, and is issued now.
  EXPECT_EQ(rig.put("after the tear", Duration::days(30)), 3u);
  EXPECT_GT(rig.store->counters().at("recovery.torn_bytes"), 0u);
}

TEST(Recovery, CheckpointTruncatesReplayHistory) {
  CrashRig rig("recovery_checkpoint.wal");
  for (int i = 0; i < 8; ++i) (void)rig.put("r", Duration::days(30));
  auto first = rig.crash_and_recover();
  EXPECT_GE(first.replayed, 8u);
  // Recovery rewrote the journal as one checkpoint: a second crash replays
  // that snapshot, not the original mutation history.
  auto second = rig.crash_and_recover();
  EXPECT_EQ(second.replayed, 1u);
  EXPECT_EQ(second.resent, 0u);
  ClientVerifier verifier = rig.verifier();
  EXPECT_EQ(verifier.verify_read(5, rig.store->read(5)).verdict,
            Verdict::kAuthentic);
  EXPECT_EQ(rig.put("ninth", Duration::days(30)), 9u);
}

TEST(Recovery, ExpirationProofsSurviveTheCrash) {
  CrashRig rig("recovery_expiry.wal");
  Sn sn = rig.put("short-lived", Duration::hours(1));
  rig.clock.advance(Duration::hours(2));  // on_expire journals the proof
  auto report = rig.crash_and_recover();
  EXPECT_GT(report.replayed, 0u);
  ClientVerifier verifier = rig.verifier();
  ReadOutcome res = rig.store->read(sn);
  ASSERT_TRUE(res.is<ReadDeleted>()) << to_string(res.status());
  EXPECT_EQ(verifier.verify_read(sn, res).verdict, Verdict::kDeletedVerified);
}

TEST(Recovery, LitigationHoldSurvivesTheCrash) {
  CrashRig rig("recovery_lit.wal");
  Sn sn = rig.put("held", Duration::days(10));
  common::Bytes cred = crypto::rsa_sign(
      worm::testing::regulator_key(),
      lit_credential_payload(sn, rig.clock.now(), 99, true));
  rig.store->lit_hold({.sn = sn,
                       .lit_id = 99,
                       .hold_until = rig.clock.now() + Duration::days(60),
                       .cred_issued_at = rig.clock.now(),
                       .credential = cred});
  (void)rig.crash_and_recover();
  ReadOutcome res = rig.store->read(sn);
  auto* ok = res.get_if<ReadOk>();
  ASSERT_NE(ok, nullptr) << to_string(res.status());
  EXPECT_TRUE(ok->vrd.attr.litigation_hold);
  EXPECT_EQ(res.status(), ReadStatus::kHold);
}

TEST(Recovery, DeviceBaseAdvanceDuringOutageIsJournaledBeforeTrim) {
  // The device's SN_base moves while the host is down (an out-of-band
  // advance with proofs the host had already journaled). Recovery's
  // catch-up trim must hit the WAL *before* the VRDT: tear the very next
  // journal append and the trim has to abort with local state untouched.
  CrashRig rig("recovery_base_outage.wal");
  Sn s1 = rig.put("expires 1", Duration::minutes(5));
  Sn s2 = rig.put("expires 2", Duration::minutes(5));
  Sn s3 = rig.put("survivor", Duration::days(30));
  rig.clock.advance(Duration::minutes(10));  // proofs delivered + journaled
  DeletionProof p1 = rig.store->read(s1).get<ReadDeleted>().proof;
  DeletionProof p2 = rig.store->read(s2).get<ReadDeleted>().proof;

  rig.crash();
  rig.firmware.advance_base(s3, {p1, p2}, {});

  rig.boot();
  rig.fault.schedule("journal.append", FaultKind::kTorn, 1);
  EXPECT_THROW((void)rig.store->recover(), common::TransientStorageError);
  // WAL-first held: the append tore, so the trim never ran — the replayed
  // deletion proof still answers.
  EXPECT_NE(rig.store->read(s1).get_if<ReadDeleted>(), nullptr);
  rig.fault.disarm_all();

  // Clean reboot: the torn tail is discarded, the trim lands journaled,
  // below-base reads answer as such, and the survivor still verifies.
  auto report = rig.crash_and_recover();
  EXPECT_TRUE(report.torn_tail);
  EXPECT_NE(rig.store->read(s1).get_if<ReadBelowBase>(), nullptr);
  ClientVerifier verifier = rig.verifier();
  EXPECT_EQ(verifier.verify_read(s3, rig.store->read(s3)).verdict,
            Verdict::kAuthentic);
}

TEST(Recovery, RebootAgainstZeroizedDeviceComesUpDegraded) {
  CrashRig rig("recovery_zeroized.wal");
  Sn sn = rig.put("outlives the device", Duration::days(30));
  ClientVerifier verifier = rig.verifier();  // anchors fetched pre-outage
  rig.device.trigger_tamper_response();

  rig.crash();
  rig.boot();  // the status probe finds the device dead — no throw
  EXPECT_TRUE(rig.store->degraded());
  auto report = rig.store->recover();
  EXPECT_GE(report.replayed, 1u);

  // Replayed proofs still serve and verify; mutations are refused.
  EXPECT_EQ(verifier.verify_read(sn, rig.store->read(sn)).verdict,
            Verdict::kAuthentic);
  EXPECT_THROW((void)rig.put("no device left", Duration::days(1)),
               common::ReadOnlyStoreError);
}

}  // namespace
}  // namespace worm::core
