// Mailbox transport under injected faults: bounded-backoff retry, the
// (seq, request-crc) dedup cache that makes resends exactly-once, retry
// budget exhaustion, and graceful degradation to read-only verified mode
// when the SCPU zeroizes mid-workload.
#include <gtest/gtest.h>

#include "fault_fixture.hpp"

namespace worm::core {
namespace {

using common::Duration;
using common::FaultKind;
using worm::testing::CrashRig;
using worm::testing::lockstep_store_config;

TEST(TransportFaults, DroppedRequestRetriedNothingExecutedTwice) {
  CrashRig rig("");
  std::uint64_t before = rig.firmware.counters().writes;
  rig.fault.schedule("channel.request", FaultKind::kDrop, 1);
  Sn sn = rig.put("dropped once", Duration::days(1));
  EXPECT_EQ(sn, 1u);
  // The drop consumed one delivery; the resend executed exactly once.
  EXPECT_EQ(rig.firmware.counters().writes, before + 1);
  auto counters = rig.store->counters();
  EXPECT_GE(counters.at("mailbox.retries"), 1u);
  EXPECT_GE(counters.at("mailbox.transport_faults"), 1u);
  EXPECT_EQ(counters.at("mailbox.timeouts"), 0u);
  EXPECT_EQ(rig.verifier().verify_read(sn, rig.store->read(sn)).verdict,
            Verdict::kAuthentic);
}

TEST(TransportFaults, LostResponseResendAnsweredFromDedupCache) {
  // The device executes, the answer vanishes. The resend must be answered
  // from the per-(seq, crc) response cache — never executed again.
  CrashRig rig("");
  std::uint64_t before = rig.firmware.counters().writes;
  rig.fault.schedule("channel.response", FaultKind::kDrop, 1);
  Sn sn = rig.put("answer lost", Duration::days(1));
  EXPECT_EQ(rig.firmware.counters().writes, before + 1);
  auto counters = rig.store->counters();
  EXPECT_GE(counters.at("mailbox.dedup_hits"), 1u);
  EXPECT_GE(counters.at("mailbox.retries"), 1u);
  EXPECT_EQ(rig.verifier().verify_read(sn, rig.store->read(sn)).verdict,
            Verdict::kAuthentic);
}

TEST(TransportFaults, DuplicateDeliveryAnsweredFromDedupCache) {
  CrashRig rig("");
  std::uint64_t before = rig.firmware.counters().writes;
  rig.fault.schedule("channel.request", FaultKind::kDuplicate, 1);
  Sn sn = rig.put("delivered twice", Duration::days(1));
  EXPECT_EQ(rig.firmware.counters().writes, before + 1);
  EXPECT_GE(rig.store->counters().at("mailbox.dedup_hits"), 1u);
  EXPECT_EQ(rig.verifier().verify_read(sn, rig.store->read(sn)).verdict,
            Verdict::kAuthentic);
}

TEST(TransportFaults, DamagedRequestRefusedByFrameCheckThenRetried) {
  // A bit flip in flight fails the frame checksum at the device boundary:
  // the device answers kStatusTransport without running any certified
  // logic, and the host's resend succeeds.
  CrashRig rig("");
  std::uint64_t before = rig.firmware.counters().writes;
  rig.fault.schedule("channel.request", FaultKind::kBitFlip, 1);
  Sn sn = rig.put("damaged once", Duration::days(1));
  EXPECT_EQ(rig.firmware.counters().writes, before + 1);
  EXPECT_GE(rig.store->counters().at("mailbox.transport_faults"), 1u);
  EXPECT_EQ(rig.verifier().verify_read(sn, rig.store->read(sn)).verdict,
            Verdict::kAuthentic);
}

TEST(TransportFaults, BackoffIsExponentialAndChargedToTheClock) {
  StoreConfig config = lockstep_store_config();
  config.mailbox.retry_initial_backoff = Duration::millis(1);
  config.mailbox.retry_backoff_factor = 2;
  config.mailbox.response_timeout = Duration::millis(5);
  CrashRig rig("", true, 0x5eed, worm::testing::slow_timers_config(), config);
  rig.fault.arm("channel.request",
                {.kind = FaultKind::kDrop, .max_fires = 3});
  common::SimTime before = rig.clock.now();
  Sn sn = rig.put("three drops", Duration::days(1));
  // Waits: (5+1) + (5+2) + (5+4) ms — timeout plus doubling backoff.
  EXPECT_EQ(rig.clock.now().ns - before.ns, Duration::millis(22).ns);
  EXPECT_EQ(rig.store->counters().at("mailbox.retries"), 3u);
  EXPECT_EQ(rig.verifier().verify_read(sn, rig.store->read(sn)).verdict,
            Verdict::kAuthentic);
}

TEST(TransportFaults, RetryBudgetExhaustionThrowsTimeout) {
  CrashRig rig("");
  rig.fault.arm("channel.request", {.kind = FaultKind::kDrop});
  Sn before = rig.firmware.sn_current();
  EXPECT_THROW((void)rig.put("unreachable device", Duration::days(1)),
               ChannelTimeoutError);
  // Every delivery vanished before the device: nothing executed.
  EXPECT_EQ(rig.firmware.sn_current(), before);
  EXPECT_EQ(rig.store->counters().at("mailbox.timeouts"), 1u);

  // The outage ends; the store keeps working.
  rig.fault.disarm("channel.request");
  Sn sn = rig.put("back online", Duration::days(1));
  EXPECT_EQ(rig.verifier().verify_read(sn, rig.store->read(sn)).verdict,
            Verdict::kAuthentic);
}

TEST(TransportFaults, DeadlineBudgetAlsoBoundsRetries) {
  StoreConfig config = lockstep_store_config();
  config.mailbox.retry_initial_backoff = Duration::millis(10);
  config.mailbox.retry_deadline = Duration::millis(15);
  config.mailbox.retry_max_attempts = 100;
  CrashRig rig("", true, 0x5eed, worm::testing::slow_timers_config(), config);
  rig.fault.arm("channel.request", {.kind = FaultKind::kDrop});
  // First wait (10ms) fits the 15ms deadline; the doubled second would not.
  EXPECT_THROW((void)rig.put("slow outage", Duration::days(1)),
               ChannelTimeoutError);
  EXPECT_EQ(rig.store->counters().at("mailbox.retries"), 1u);
}

TEST(TransportFaults, ZeroizationDegradesToReadOnlyVerifiedMode) {
  CrashRig rig("");
  Sn sn = rig.put("survivor", Duration::days(30));
  ClientVerifier verifier = rig.verifier();  // anchors fetched pre-outage

  // The tamper sensor trips while the next command sits in the mailbox.
  rig.fault.schedule("scpu.tamper", FaultKind::kZeroize, 1);
  EXPECT_THROW((void)rig.put("never lands", Duration::days(1)),
               common::ReadOnlyStoreError);
  EXPECT_TRUE(rig.store->degraded());
  EXPECT_EQ(rig.store->counters().at("store.degraded"), 1u);

  // Reads still serve existing records with verifiable proofs.
  ReadOutcome res = rig.store->read(sn);
  EXPECT_EQ(verifier.verify_read(sn, res).verdict, Verdict::kAuthentic);

  // Every further mutation is refused, consistently.
  EXPECT_THROW((void)rig.put("still dead", Duration::days(1)),
               common::ReadOnlyStoreError);
  EXPECT_THROW(rig.store->lit_hold({.sn = sn,
                                    .lit_id = 1,
                                    .hold_until = rig.clock.now(),
                                    .cred_issued_at = rig.clock.now(),
                                    .credential = {}}),
               common::ReadOnlyStoreError);
  // Idle duties are quietly disabled rather than throwing from timers.
  EXPECT_FALSE(rig.store->pump_idle());
}

}  // namespace
}  // namespace worm::core
