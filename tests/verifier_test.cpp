// ClientVerifier edge cases: every rejection branch exercised with
// hand-crafted hostile inputs (beyond what the adversary drivers produce).
#include <gtest/gtest.h>

#include "worm_fixture.hpp"

namespace worm::core {
namespace {

using common::Bytes;
using common::Duration;
using common::to_bytes;
using worm::testing::Rig;

TEST(Verifier, RejectsVrdWithInvalidSn) {
  Rig rig;
  Vrd v;
  v.sn = kInvalidSn;
  EXPECT_EQ(rig.verifier.verify_vrd(v, {}).verdict, Verdict::kTampered);
}

TEST(Verifier, RejectsPayloadCountMismatch) {
  Rig rig;
  Sn sn = rig.put("one payload", Duration::days(1));
  auto res = rig.store.read(sn);
  auto ok = res.get<ReadOk>();
  // Drop a payload but keep the RDL — count mismatch must fail fast.
  EXPECT_EQ(rig.verifier.verify_vrd(ok.vrd, {}).verdict, Verdict::kTampered);
}

TEST(Verifier, RejectsUnknownShortKeyEpoch) {
  Rig rig;
  Sn sn = rig.put("burst", Duration::days(1), WitnessMode::kDeferred);
  auto res = rig.store.read(sn);
  auto ok = res.get<ReadOk>();
  ok.vrd.metasig.key_id = 999;  // Mallory invents an epoch
  Outcome out = rig.verifier.verify_vrd(ok.vrd, ok.payloads);
  EXPECT_EQ(out.verdict, Verdict::kTampered);
  EXPECT_NE(out.detail.find("epoch"), std::string::npos);
}

TEST(Verifier, RejectsForgedShortKeyCert) {
  Rig rig;
  Sn sn = rig.put("burst", Duration::days(1), WitnessMode::kDeferred);
  // Anchors whose short-key cert signature was doctored: even a matching
  // key id must be refused because the cert chain is broken.
  TrustAnchors anchors = rig.store.anchors();
  ASSERT_FALSE(anchors.short_certs.empty());
  anchors.short_certs[0].sig[0] ^= 0x01;
  ClientVerifier verifier(anchors, rig.clock);
  Outcome out = verifier.verify_read(sn, rig.store.read(sn));
  EXPECT_EQ(out.verdict, Verdict::kTampered);
  EXPECT_NE(out.detail.find("certificate"), std::string::npos);
}

TEST(Verifier, RejectsCertForWrongValidity) {
  Rig rig;
  Sn sn = rig.put("burst", Duration::days(1), WitnessMode::kDeferred);
  TrustAnchors anchors = rig.store.anchors();
  // Mallory extends the cert's validity to keep a short sig alive forever;
  // the cert signature covers the validity window, so this breaks the cert.
  anchors.short_certs[0].valid_until =
      anchors.short_certs[0].valid_until + Duration::years(10);
  ClientVerifier verifier(anchors, rig.clock);
  EXPECT_EQ(verifier.verify_read(sn, rig.store.read(sn)).verdict,
            Verdict::kTampered);
}

TEST(Verifier, WindowMustContainRequestedSn) {
  Rig rig;
  rig.put("pin", Duration::days(30));
  for (int i = 0; i < 3; ++i) rig.put("w", Duration::hours(1));
  Sn outside = rig.put("live", Duration::days(30));
  rig.clock.advance(Duration::hours(2));
  while (rig.store.pump_idle()) {
  }
  ASSERT_EQ(rig.store.vrdt().windows().size(), 1u);
  DeletedWindow w = rig.store.vrdt().windows()[0];
  // A genuine window presented for an SN it does not cover.
  Outcome out = rig.verifier.verify_window(w, outside);
  EXPECT_EQ(out.verdict, Verdict::kTampered);
  // And for one it does cover, it verifies.
  EXPECT_EQ(rig.verifier.verify_window(w, w.lo).verdict,
            Verdict::kDeletedVerified);
}

TEST(Verifier, BaseBoundaryIsExclusive) {
  Rig rig;
  for (int i = 0; i < 3; ++i) rig.put("r", Duration::hours(1));
  rig.clock.advance(Duration::hours(2));
  while (rig.store.pump_idle()) {
  }
  SignedSnBase base = rig.firmware.sign_base();
  ASSERT_EQ(base.sn_base, 4u);
  EXPECT_EQ(rig.verifier.verify_base(base, 3).verdict,
            Verdict::kDeletedVerified);
  EXPECT_EQ(rig.verifier.verify_base(base, 4).verdict, Verdict::kTampered);
}

TEST(Verifier, HeartbeatBoundaryIsInclusive) {
  Rig rig;
  rig.put("r", Duration::days(1));
  rig.clock.advance(Duration::minutes(3));
  SignedSnCurrent hb = rig.store.latest_heartbeat();
  ASSERT_EQ(hb.sn_current, 1u);
  // Claiming SN 1 "never existed" contradicts the heartbeat itself.
  EXPECT_EQ(rig.verifier.verify_current(hb, 1).verdict, Verdict::kTampered);
  EXPECT_EQ(rig.verifier.verify_current(hb, 2).verdict,
            Verdict::kNeverExistedVerified);
}

TEST(Verifier, TamperedHeartbeatSignature) {
  Rig rig;
  SignedSnCurrent hb = rig.store.latest_heartbeat();
  hb.sn_current += 5;  // contents changed under the old signature
  EXPECT_EQ(rig.verifier.verify_current(hb, 99).verdict, Verdict::kTampered);
}

TEST(Verifier, DeletionProofTimestampIsCovered) {
  Rig rig;
  Sn sn = rig.put("r", Duration::hours(1));
  rig.clock.advance(Duration::hours(2));
  auto res = rig.store.read(sn);
  auto del = res.get<ReadDeleted>();
  del.proof.deleted_at = del.proof.deleted_at + Duration::days(365);
  EXPECT_FALSE(rig.verifier.verify_deletion_proof(del.proof));
}

// ---------------------------------------------------------------------------
// Epoch attestation certificates (O(1)-amortized freshness)
// ---------------------------------------------------------------------------

TEST(Verifier, EpochCertAuthenticAndForgeryConvicted) {
  Rig rig;
  rig.put("r", Duration::days(1));
  EpochCert cert = rig.firmware.epoch_cert();
  EXPECT_EQ(rig.verifier.verify_epoch_cert(cert).verdict, Verdict::kAuthentic);

  EpochCert forged = cert;
  forged.sig[0] ^= 0x01;
  EXPECT_EQ(rig.verifier.verify_epoch_cert(forged).verdict,
            Verdict::kTampered);

  // Contents changed under the genuine signature: also a forgery.
  EpochCert bumped = cert;
  bumped.sn_current += 7;
  EXPECT_EQ(rig.verifier.verify_epoch_cert(bumped).verdict,
            Verdict::kTampered);
}

TEST(Verifier, EpochCertStaleStampIsRejected) {
  // A genuine cert older than sn_current_max_age proves nothing about the
  // present — exactly the record-hiding window the paper's freshness
  // mechanism (§4.2.1 (ii)) closes.
  Rig rig;
  rig.put("r", Duration::days(1));
  EpochCert cert = rig.firmware.epoch_cert();
  rig.clock.advance(rig.store.freshness_horizon() + Duration::seconds(1));
  EXPECT_EQ(rig.verifier.verify_epoch_cert(cert).verdict,
            Verdict::kStaleProof);
}

TEST(Verifier, EpochCertReplayOfOlderEpochIsRejected) {
  Rig rig;
  rig.put("a", Duration::days(1));
  EpochCert older = rig.firmware.epoch_cert();
  rig.clock.advance(rig.firmware.config().epoch_interval +
                    Duration::seconds(1));
  rig.put("b", Duration::days(1));
  EpochCert newer = rig.firmware.epoch_cert();
  ASSERT_GT(newer.epoch, older.epoch);
  EXPECT_EQ(rig.verifier.verify_epoch_cert(newer).verdict,
            Verdict::kAuthentic);
  // Mallory replays the (genuinely signed) older cert to hide the records
  // stamped since; the verifier's epoch high-water mark convicts it.
  EXPECT_EQ(rig.verifier.verify_epoch_cert(older).verdict,
            Verdict::kStaleProof);
  // Re-presenting the newest cert stays fine (the mark is inclusive).
  EXPECT_EQ(rig.verifier.verify_epoch_cert(newer).verdict,
            Verdict::kAuthentic);
}

TEST(Verifier, EpochCertSnRollbackIsConvicted) {
  Rig rig;
  for (int i = 0; i < 5; ++i) rig.put("early", Duration::days(1));
  rig.clock.advance(rig.firmware.config().epoch_interval +
                    Duration::seconds(1));
  rig.put("roll", Duration::days(1));
  common::Bytes nvram = rig.firmware.save_nvram();
  Sn sn_at_save = rig.firmware.sn_current();

  rig.clock.advance(rig.firmware.config().epoch_interval +
                    Duration::seconds(1));
  for (int i = 0; i < 4; ++i) rig.put("late", Duration::days(1));
  EpochCert latest = rig.firmware.epoch_cert();
  ASSERT_GT(latest.sn_current, sn_at_save);
  ASSERT_EQ(rig.verifier.verify_epoch_cert(latest).verdict,
            Verdict::kAuthentic);

  // Mallory powers a replacement device from a stale NVRAM snapshot. Its
  // long-term keys are deterministic in the seed, so every signature it
  // makes is genuine — but its SN_current has rolled back, silently erasing
  // the records written since the snapshot. The battery-backed epoch counter
  // resumes past the snapshot too, so the replay check alone cannot catch
  // it; the SN high-water mark must.
  Rig stale;
  stale.firmware.restore_nvram(nvram);
  EpochCert rolled = stale.firmware.epoch_cert();
  while (rolled.epoch < latest.epoch) {
    stale.clock.advance(stale.firmware.config().epoch_interval +
                        Duration::seconds(1));
    rolled = stale.firmware.epoch_cert();
  }
  ASSERT_GE(rolled.epoch, latest.epoch);
  ASSERT_LT(rolled.sn_current, latest.sn_current);
  EXPECT_EQ(rig.verifier.verify_epoch_cert(rolled).verdict,
            Verdict::kTampered);
}

TEST(Verifier, OutcomeTrustworthiness) {
  auto trust = [](Verdict v) { return Outcome{v, ""}.trustworthy(); };
  EXPECT_TRUE(trust(Verdict::kAuthentic));
  EXPECT_TRUE(trust(Verdict::kDeletedVerified));
  EXPECT_TRUE(trust(Verdict::kNeverExistedVerified));
  EXPECT_FALSE(trust(Verdict::kUnverifiableYet));
  EXPECT_FALSE(trust(Verdict::kStaleProof));
  EXPECT_FALSE(trust(Verdict::kTampered));
}

TEST(Verifier, VerdictNamesAreStable) {
  EXPECT_STREQ(to_string(Verdict::kAuthentic), "authentic");
  EXPECT_STREQ(to_string(Verdict::kTampered), "TAMPERED");
  EXPECT_STREQ(to_string(Verdict::kStaleProof), "stale-proof");
}

}  // namespace
}  // namespace worm::core
