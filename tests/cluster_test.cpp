// Sharded scale-out integration: the in-process ShardRouter (routing, batch
// reassembly, counter aggregation) and the networked ClusterClient speaking
// the v3 protocol to real WormServers — masking-quorum writes and reads,
// conviction of a Byzantine replica that forges an envelope, and the
// kStaleRoute refresh path that turns map version skew into a retryable
// blip instead of a misroute.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster_client.hpp"
#include "cluster/quorum.hpp"
#include "cluster/shard_map.hpp"
#include "cluster/shard_router.hpp"
#include "server/worm_server.hpp"
#include "worm/session.hpp"
#include "worm_fixture.hpp"

namespace worm::cluster {
namespace {

using common::Bytes;
using common::Duration;
using worm::testing::Rig;

core::StoreConfig pipelined() {
  core::StoreConfig sc;
  sc.pipeline.enabled = true;
  return sc;
}

core::WriteRequest record(const std::string& text) {
  core::WriteRequest w;
  w.payloads = {common::to_bytes(text)};
  w.attr.retention = Duration::days(30);
  w.attr.regulation_policy = 17;
  return w;
}

// ---------------------------------------------------------------------------
// ShardRouter: in-process scale-out.
// ---------------------------------------------------------------------------

/// N full deployments behind one router.
struct RouterRig {
  explicit RouterRig(ShardMap map) {
    for (std::size_t i = 0; i < map.shard_count(); ++i) {
      rigs.push_back(std::make_unique<Rig>(core::FirmwareConfig{},
                                           pipelined()));
    }
    router.emplace(std::move(map), [this](ShardId shard) {
      Rig& rig = *rigs[shard];
      return std::make_unique<core::WormSession>(rig.store, "router-test",
                                                 rig.clock);
    });
  }

  std::vector<std::unique_ptr<Rig>> rigs;
  std::optional<ShardRouter> router;
};

TEST(ShardRouter, RoundRobinsWritesAcrossGlobalRanges) {
  RouterRig rr(ShardMap::uniform(2, 1000));
  ShardRouter& router = *rr.router;

  // Round-robin: shard 0 local 1 -> global 1, shard 1 local 1 -> global 1001.
  EXPECT_EQ(router.write(record("a")), 1u);
  EXPECT_EQ(router.write(record("b")), 1001u);
  EXPECT_EQ(router.write(record("c")), 2u);
  EXPECT_EQ(router.write(record("d")), 1002u);

  core::ReadOutcome out = router.read(1001);
  const auto* ok = out.get_if<core::ReadOk>();
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->payloads.at(0), common::to_bytes("b"));

  // An SN nobody owns is a routing error, not a store answer.
  EXPECT_THROW((void)router.read(5000), common::PreconditionError);
  EXPECT_THROW((void)router.session(99), common::PreconditionError);
}

TEST(ShardRouter, RoutedTicketTranslatesToGlobal) {
  RouterRig rr(ShardMap::uniform(2, 1000));
  RoutedTicket t0 = rr.router->write_async(record("x"));
  RoutedTicket t1 = rr.router->write_async(record("y"));
  EXPECT_EQ(t0.shard(), 0u);
  EXPECT_EQ(t1.shard(), 1u);
  EXPECT_EQ(t0.get(), 1u);
  EXPECT_EQ(t1.get(), 1001u);
  rr.router->drain_writes();
}

TEST(ShardRouter, ReadManyReassemblesInRequestOrder) {
  RouterRig rr(ShardMap::uniform(2, 1000));
  for (int i = 0; i < 6; ++i) {
    (void)rr.router->write(record("r" + std::to_string(i)));
  }
  // Mixed shard order, duplicates included: answers must line up 1:1.
  std::vector<core::Sn> sns = {1002, 1, 3, 1001, 1, 1003};
  std::vector<std::string> want = {"r3", "r0", "r4", "r1", "r0", "r5"};
  std::vector<core::ReadOutcome> outs = rr.router->read_many(sns);
  ASSERT_EQ(outs.size(), sns.size());
  for (std::size_t i = 0; i < outs.size(); ++i) {
    const auto* ok = outs[i].get_if<core::ReadOk>();
    ASSERT_NE(ok, nullptr) << "position " << i;
    EXPECT_EQ(ok->payloads.at(0), common::to_bytes(want[i])) << "position "
                                                             << i;
  }
}

TEST(ShardRouter, AggregatesCountersAcrossShards) {
  RouterRig rr(ShardMap::uniform(2, 1000));
  for (int i = 0; i < 5; ++i) (void)rr.router->write(record("c"));

  ClusterCounters counters =
      rr.router->counters_snapshot(core::CounterFlush::kSettled);
  ASSERT_EQ(counters.shards.size(), 2u);
  auto m = counters.as_map();
  // Round-robin put 3 on shard 0 and 2 on shard 1; the cluster view sums.
  EXPECT_EQ(m.at("shard.0.store.writes"), 3u);
  EXPECT_EQ(m.at("shard.1.store.writes"), 2u);
  EXPECT_EQ(m.at("cluster.store.writes"), 5u);
}

TEST(ShardRouter, SkipsEmptyShardsOnWrite) {
  // Shard 1 is provisioned but owns no SNs: the round-robin must never
  // admit into it (its ticket could not translate back to a global SN).
  RouterRig rr(ShardMap(1, {ShardRange{1, 101, 0}, ShardRange{101, 101, 1},
                            ShardRange{101, 201, 2}}));
  for (int i = 0; i < 4; ++i) (void)rr.router->write(record("w"));
  auto m = rr.router->counters_snapshot(core::CounterFlush::kSettled).as_map();
  EXPECT_EQ(m.at("shard.1.store.writes"), 0u);
  EXPECT_EQ(m.at("cluster.store.writes"), 4u);
}

// ---------------------------------------------------------------------------
// ClusterClient: quorum replication over real servers.
// ---------------------------------------------------------------------------

/// One replica: a full deployment plus a WormServer announcing its cluster
/// membership (shard id, route version, the serialized map).
struct ReplicaRig {
  explicit ReplicaRig(const server::ServerConfig& cfg) : rig({}, pipelined()) {
    auth.add("alice", common::to_bytes("alice-secret"));
    server.emplace(cfg, auth, [this](std::string_view principal) {
      return std::make_unique<core::WormSession>(
          rig.store, std::string(principal), rig.clock);
    });
    server->start();
  }

  Rig rig;
  server::AuthRegistry auth;
  std::optional<server::WormServer> server;
};

/// n replicas per shard, every server configured from `server_map`. The
/// client's initial map may be older — that is the version-skew test.
struct ClusterRig {
  ClusterRig(const ShardMap& server_map, QuorumParams q) : quorum(q) {
    Bytes blob = server_map.serialize();
    for (const ShardRange& range : server_map.ranges()) {
      auto& column = replicas.emplace_back();
      for (std::uint32_t i = 0; i < q.n; ++i) {
        server::ServerConfig cfg;
        cfg.shard_id = range.shard;
        cfg.route_version = server_map.version();
        cfg.shard_map_blob = blob;
        column.push_back(std::make_unique<ReplicaRig>(cfg));
      }
      shard_ids.push_back(range.shard);
    }
  }

  ClusterConfig client_config(ShardMap client_map) const {
    ClusterConfig cc;
    cc.map = std::move(client_map);
    cc.quorum = quorum;
    for (std::size_t s = 0; s < replicas.size(); ++s) {
      ShardReplicaSet set;
      set.shard = shard_ids[s];
      for (const auto& rep : replicas[s]) {
        ReplicaEndpoint ep;
        ep.client.tcp_port = rep->server->port();
        ep.client.principal = "alice";
        ep.client.token = rep->auth.mint("alice");
        // Out-of-band trust anchors of THIS replica's SCPU.
        ep.anchors = rep->rig.store.anchors();
        set.replicas.push_back(std::move(ep));
      }
      cc.shards.push_back(std::move(set));
    }
    return cc;
  }

  /// The trusted time source for the client verifiers. Every replica runs
  /// an identical op sequence, so the sim clocks stay in lockstep; any
  /// replica's clock works as the synchronized client clock.
  const common::TimeSource& trusted_time() const {
    return replicas.at(0).at(0)->rig.clock;
  }

  QuorumParams quorum;
  std::vector<ShardId> shard_ids;
  std::vector<std::vector<std::unique_ptr<ReplicaRig>>> replicas;
};

TEST(ClusterClient, RejectsInvalidQuorumConfigs) {
  // n >= 4f+1: n=4, f=1 is NOT enough to mask a Byzantine replica.
  EXPECT_FALSE((QuorumParams{4, 1}.valid()));
  ASSERT_TRUE((QuorumParams{5, 1}.valid()));
  EXPECT_EQ((QuorumParams{5, 1}.write_quorum()), 4u);
  EXPECT_EQ((QuorumParams{5, 1}.read_quorum()), 2u);

  ClusterRig cluster(ShardMap::uniform(1, 100), QuorumParams{5, 1});
  ClusterConfig bad = cluster.client_config(ShardMap::uniform(1, 100));
  bad.quorum = QuorumParams{4, 1};
  EXPECT_THROW((void)ClusterClient(std::move(bad), cluster.trusted_time()),
               common::PreconditionError);

  // Replica set size must equal n.
  ClusterConfig short_set = cluster.client_config(ShardMap::uniform(1, 100));
  short_set.shards[0].replicas.pop_back();
  EXPECT_THROW(
      (void)ClusterClient(std::move(short_set), cluster.trusted_time()),
      common::PreconditionError);
}

TEST(ClusterClient, QuorumWritesAndVerifiedReadsAcrossShards) {
  ShardMap map = ShardMap::uniform(2, 100);
  ClusterRig cluster(map, QuorumParams{5, 1});
  ClusterClient client(cluster.client_config(map), cluster.trusted_time());

  // Round-robin across the two shards' global ranges; every replica acks.
  std::vector<core::Sn> want = {1, 101, 2, 102};
  for (std::size_t i = 0; i < want.size(); ++i) {
    QuorumWrite w = client.write(record("record " + std::to_string(i)));
    ASSERT_TRUE(w.ok) << w.message;
    EXPECT_FALSE(w.busy);
    EXPECT_EQ(w.acks, 5u);
    EXPECT_EQ(w.sn, want[i]);
  }

  for (std::size_t i = 0; i < want.size(); ++i) {
    QuorumRead r = client.read(want[i]);
    ASSERT_TRUE(r.trustworthy()) << r.verdict.detail;
    EXPECT_EQ(r.verdict.verdict, core::Verdict::kAuthentic);
    EXPECT_EQ(r.agreeing, 5u);
    EXPECT_TRUE(r.convictions.empty());
    const auto* ok = r.outcome.get_if<core::ReadOk>();
    ASSERT_NE(ok, nullptr);
    EXPECT_EQ(ok->payloads.at(0),
              common::to_bytes("record " + std::to_string(i)));
  }

  // Absence is quorum-proven too: an unallocated SN verifies as
  // never-existed on every honest replica.
  QuorumRead gone = client.read(50);
  EXPECT_TRUE(gone.trustworthy());
  EXPECT_EQ(gone.verdict.verdict, core::Verdict::kNeverExistedVerified);
  EXPECT_EQ(gone.agreeing, 5u);

  // Off the map entirely: a routing error, not a store answer.
  EXPECT_THROW((void)client.read(500), common::PreconditionError);

  // Writes forwarded attestations; each shard tracks its own watermark
  // (independent SCPUs — there is no single cluster watermark).
  EXPECT_TRUE(client.watermark(0).has_value());
  EXPECT_TRUE(client.watermark(1).has_value());
}

TEST(ClusterClient, ByzantineReplicaIsOutvotedAndConvicted) {
  ShardMap map = ShardMap::uniform(1, 1000);
  ClusterRig cluster(map, QuorumParams{5, 1});
  ClusterClient client(cluster.client_config(map), cluster.trusted_time());

  QuorumWrite w = client.write(record("evidence"));
  ASSERT_TRUE(w.ok) << w.message;
  ASSERT_EQ(w.sn, 1u);

  // Replica 2's insider forges the envelope in its VRDT: a litigation hold
  // appears that the SCPU never witnessed. The forgery is self-consistent
  // on that replica's host, so only verification against its own anchors —
  // not cross-replica comparison — can catch it.
  {
    ReplicaRig& byzantine = *cluster.replicas[0][2];
    auto* e = core::InsiderHandle(byzantine.rig.store).vrdt().mutable_entry(1);
    ASSERT_NE(e, nullptr);
    e->vrd.attr.litigation_hold = true;
  }

  QuorumRead r = client.read(1);
  // The four honest replicas still clear the read quorum (f+1 = 2)...
  ASSERT_TRUE(r.trustworthy()) << r.verdict.detail;
  EXPECT_EQ(r.verdict.verdict, core::Verdict::kAuthentic);
  EXPECT_EQ(r.agreeing, 4u);
  const auto* ok = r.outcome.get_if<core::ReadOk>();
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->payloads.at(0), common::to_bytes("evidence"));
  EXPECT_FALSE(ok->vrd.attr.litigation_hold);

  // ...and the forger is convicted by name, with the verifier's verdict.
  ASSERT_EQ(r.convictions.size(), 1u);
  EXPECT_EQ(r.convictions[0].shard, 0u);
  EXPECT_EQ(r.convictions[0].replica, 2u);
  EXPECT_EQ(r.convictions[0].verdict, core::Verdict::kTampered);
}

TEST(ClusterClient, VersionSkewRefreshesInsteadOfMisrouting) {
  // Servers run map v2; the client boots with the stale v1 view.
  ShardMap v2 = ShardMap::uniform(2, 100, /*version=*/2);
  ClusterRig cluster(v2, QuorumParams{5, 1});
  ClusterClient client(cluster.client_config(ShardMap::uniform(2, 100, 1)),
                       cluster.trusted_time());
  ASSERT_EQ(client.map().version(), 1u);

  // Every replica answers kStaleRoute to the v1-stamped frame; the client
  // fetches the v2 map over kShardMap, re-stamps, and retries — one write
  // call, no misroute, no duplicate SN (store dedup absorbs replays).
  QuorumWrite w = client.write(record("skewed"));
  ASSERT_TRUE(w.ok) << w.message;
  EXPECT_EQ(w.sn, 1u);
  EXPECT_EQ(client.map().version(), 2u);

  QuorumRead r = client.read(1);
  ASSERT_TRUE(r.trustworthy()) << r.verdict.detail;
  EXPECT_EQ(r.agreeing, 5u);

  // A second stale client exercises the read-side refresh: its first read
  // hits kStaleRoute (a typed, retryable wire error — never a misroute)
  // and transparently lands after its own refresh.
  ClusterClient late(cluster.client_config(ShardMap::uniform(2, 100, 1)),
                     cluster.trusted_time());
  QuorumRead lr = late.read(1);
  ASSERT_TRUE(lr.trustworthy()) << lr.verdict.detail;
  EXPECT_EQ(late.map().version(), 2u);
  const auto* ok = lr.outcome.get_if<core::ReadOk>();
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->payloads.at(0), common::to_bytes("skewed"));

  // refresh_map reports whether the version moved.
  EXPECT_FALSE(client.refresh_map());  // already at v2
}

TEST(ClusterClient, StandaloneServerHasNoShardMap) {
  // A server with no cluster membership rejects kShardMap as kBadRequest;
  // the client library surfaces it as an error rather than an empty map.
  ReplicaRig standalone((server::ServerConfig()));
  server::ClientConfig cfg;
  cfg.tcp_port = standalone.server->port();
  cfg.principal = "alice";
  cfg.token = standalone.auth.mint("alice");
  server::WormClient client(std::move(cfg));
  EXPECT_THROW((void)client.fetch_shard_map(), common::Error);
}

}  // namespace
}  // namespace worm::cluster
