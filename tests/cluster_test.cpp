// Sharded scale-out integration: the in-process ShardRouter (routing, batch
// reassembly, counter aggregation, admission-side capacity checks) and the
// networked ClusterClient speaking the v4 protocol to real WormServers —
// client-sequenced masking-quorum writes, verified reads, conviction of a
// Byzantine replica that forges an envelope, laggard repair from quorum
// reads, operator-signed shard-map refresh (forged and rollback envelopes
// refused), and the kStaleRoute path that turns map version skew into a
// retryable blip instead of a misroute.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster_client.hpp"
#include "crypto/rsa.hpp"
#include "cluster/quorum.hpp"
#include "cluster/shard_map.hpp"
#include "cluster/shard_router.hpp"
#include "server/worm_server.hpp"
#include "worm/session.hpp"
#include "worm_fixture.hpp"

namespace worm::cluster {
namespace {

using common::Bytes;
using common::Duration;
using worm::testing::Rig;

core::StoreConfig pipelined() {
  core::StoreConfig sc;
  sc.pipeline.enabled = true;
  return sc;
}

core::WriteRequest record(const std::string& text) {
  core::WriteRequest w;
  w.payloads = {common::to_bytes(text)};
  w.attr.retention = Duration::days(30);
  w.attr.regulation_policy = 17;
  return w;
}

/// The cluster operator's shard-map signing key. One per test binary:
/// keygen is the expensive part, and every rig can share an operator.
const crypto::RsaPrivateKey& operator_key() {
  static const crypto::RsaPrivateKey key = [] {
    crypto::Drbg rng(std::uint64_t{0x5eed'ca11'0b01});
    return crypto::rsa_generate(rng, 512);
  }();
  return key;
}

// ---------------------------------------------------------------------------
// ShardRouter: in-process scale-out.
// ---------------------------------------------------------------------------

/// N full deployments behind one router.
struct RouterRig {
  explicit RouterRig(ShardMap map) {
    for (std::size_t i = 0; i < map.shard_count(); ++i) {
      rigs.push_back(std::make_unique<Rig>(core::FirmwareConfig{},
                                           pipelined()));
    }
    router.emplace(std::move(map), [this](ShardId shard) {
      Rig& rig = *rigs[shard];
      return std::make_unique<core::WormSession>(rig.store, "router-test",
                                                 rig.clock);
    });
  }

  std::vector<std::unique_ptr<Rig>> rigs;
  std::optional<ShardRouter> router;
};

TEST(ShardRouter, RoundRobinsWritesAcrossGlobalRanges) {
  RouterRig rr(ShardMap::uniform(2, 1000));
  ShardRouter& router = *rr.router;

  // Round-robin: shard 0 local 1 -> global 1, shard 1 local 1 -> global 1001.
  EXPECT_EQ(router.write(record("a")), 1u);
  EXPECT_EQ(router.write(record("b")), 1001u);
  EXPECT_EQ(router.write(record("c")), 2u);
  EXPECT_EQ(router.write(record("d")), 1002u);

  core::ReadOutcome out = router.read(1001);
  const auto* ok = out.get_if<core::ReadOk>();
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->payloads.at(0), common::to_bytes("b"));

  // An SN nobody owns is a routing error, not a store answer.
  EXPECT_THROW((void)router.read(5000), common::PreconditionError);
  EXPECT_THROW((void)router.session(99), common::PreconditionError);
}

TEST(ShardRouter, RoutedTicketTranslatesToGlobal) {
  RouterRig rr(ShardMap::uniform(2, 1000));
  RoutedTicket t0 = rr.router->write_async(record("x"));
  RoutedTicket t1 = rr.router->write_async(record("y"));
  EXPECT_EQ(t0.shard(), 0u);
  EXPECT_EQ(t1.shard(), 1u);
  EXPECT_EQ(t0.get(), 1u);
  EXPECT_EQ(t1.get(), 1001u);
  rr.router->drain_writes();
}

TEST(ShardRouter, ReadManyReassemblesInRequestOrder) {
  RouterRig rr(ShardMap::uniform(2, 1000));
  for (int i = 0; i < 6; ++i) {
    (void)rr.router->write(record("r" + std::to_string(i)));
  }
  // Mixed shard order, duplicates included: answers must line up 1:1.
  std::vector<core::Sn> sns = {1002, 1, 3, 1001, 1, 1003};
  std::vector<std::string> want = {"r3", "r0", "r4", "r1", "r0", "r5"};
  std::vector<core::ReadOutcome> outs = rr.router->read_many(sns);
  ASSERT_EQ(outs.size(), sns.size());
  for (std::size_t i = 0; i < outs.size(); ++i) {
    const auto* ok = outs[i].get_if<core::ReadOk>();
    ASSERT_NE(ok, nullptr) << "position " << i;
    EXPECT_EQ(ok->payloads.at(0), common::to_bytes(want[i])) << "position "
                                                             << i;
  }
}

TEST(ShardRouter, AggregatesCountersAcrossShards) {
  RouterRig rr(ShardMap::uniform(2, 1000));
  for (int i = 0; i < 5; ++i) (void)rr.router->write(record("c"));

  ClusterCounters counters =
      rr.router->counters_snapshot(core::CounterFlush::kSettled);
  ASSERT_EQ(counters.shards.size(), 2u);
  auto m = counters.as_map();
  // Round-robin put 3 on shard 0 and 2 on shard 1; the cluster view sums.
  EXPECT_EQ(m.at("shard.0.store.writes"), 3u);
  EXPECT_EQ(m.at("shard.1.store.writes"), 2u);
  EXPECT_EQ(m.at("cluster.store.writes"), 5u);
}

TEST(ShardRouter, SkipsEmptyShardsOnWrite) {
  // Shard 1 is provisioned but owns no SNs: the round-robin must never
  // admit into it (its ticket could not translate back to a global SN).
  RouterRig rr(ShardMap(1, {ShardRange{1, 101, 0}, ShardRange{101, 101, 1},
                            ShardRange{101, 201, 2}}));
  for (int i = 0; i < 4; ++i) (void)rr.router->write(record("w"));
  auto m = rr.router->counters_snapshot(core::CounterFlush::kSettled).as_map();
  EXPECT_EQ(m.at("shard.1.store.writes"), 0u);
  EXPECT_EQ(m.at("cluster.store.writes"), 4u);
}

// ---------------------------------------------------------------------------
// ClusterClient: quorum replication over real servers.
// ---------------------------------------------------------------------------

/// One replica: a full deployment plus a WormServer announcing its cluster
/// membership (shard id, route version, the serialized map).
struct ReplicaRig {
  explicit ReplicaRig(const server::ServerConfig& cfg) : rig({}, pipelined()) {
    auth.add("alice", common::to_bytes("alice-secret"));
    auth.add("bob", common::to_bytes("bob-secret"));
    server.emplace(cfg, auth, [this](std::string_view principal) {
      return std::make_unique<core::WormSession>(
          rig.store, std::string(principal), rig.clock);
    });
    server->start();
  }

  Rig rig;
  server::AuthRegistry auth;
  std::optional<server::WormServer> server;
};

/// n replicas per shard, every server configured from `server_map`. The
/// client's initial map may be older — that is the version-skew test.
struct ClusterRig {
  /// Lets a test hand a chosen replica a hostile kShardMap payload (forged
  /// signature, rollback, raw bytes) in place of the operator-signed one.
  using BlobHook = std::function<Bytes(std::size_t shard_idx,
                                       std::uint32_t replica_idx,
                                       const Bytes& genuine)>;

  ClusterRig(const ShardMap& server_map, QuorumParams q,
             const BlobHook& blob_for = nullptr)
      : quorum(q) {
    Bytes blob = sign_shard_map(server_map, operator_key());
    std::size_t shard_idx = 0;
    for (const ShardRange& range : server_map.ranges()) {
      auto& column = replicas.emplace_back();
      for (std::uint32_t i = 0; i < q.n; ++i) {
        server::ServerConfig cfg;
        cfg.shard_id = range.shard;
        cfg.route_version = server_map.version();
        cfg.shard_map_blob = blob_for ? blob_for(shard_idx, i, blob) : blob;
        column.push_back(std::make_unique<ReplicaRig>(cfg));
      }
      shard_ids.push_back(range.shard);
      ++shard_idx;
    }
  }

  ClusterConfig client_config(ShardMap client_map) const {
    ClusterConfig cc;
    cc.map = std::move(client_map);
    cc.map_key = operator_key().public_key();
    cc.quorum = quorum;
    for (std::size_t s = 0; s < replicas.size(); ++s) {
      ShardReplicaSet set;
      set.shard = shard_ids[s];
      for (const auto& rep : replicas[s]) {
        ReplicaEndpoint ep;
        ep.client.tcp_port = rep->server->port();
        ep.client.principal = "alice";
        ep.client.token = rep->auth.mint("alice");
        // Out-of-band trust anchors of THIS replica's SCPU.
        ep.anchors = rep->rig.store.anchors();
        set.replicas.push_back(std::move(ep));
      }
      cc.shards.push_back(std::move(set));
    }
    return cc;
  }

  /// The trusted time source for the client verifiers. Every replica runs
  /// an identical op sequence, so the sim clocks stay in lockstep; any
  /// replica's clock works as the synchronized client clock.
  const common::TimeSource& trusted_time() const {
    return replicas.at(0).at(0)->rig.clock;
  }

  QuorumParams quorum;
  std::vector<ShardId> shard_ids;
  std::vector<std::vector<std::unique_ptr<ReplicaRig>>> replicas;
};

TEST(ClusterClient, RejectsInvalidQuorumConfigs) {
  // n >= 4f+1: n=4, f=1 is NOT enough to mask a Byzantine replica.
  EXPECT_FALSE((QuorumParams{4, 1}.valid()));
  ASSERT_TRUE((QuorumParams{5, 1}.valid()));
  EXPECT_EQ((QuorumParams{5, 1}.write_quorum()), 4u);
  EXPECT_EQ((QuorumParams{5, 1}.read_quorum()), 2u);

  ClusterRig cluster(ShardMap::uniform(1, 100), QuorumParams{5, 1});
  ClusterConfig bad = cluster.client_config(ShardMap::uniform(1, 100));
  bad.quorum = QuorumParams{4, 1};
  EXPECT_THROW((void)ClusterClient(std::move(bad), cluster.trusted_time()),
               common::PreconditionError);

  // Replica set size must equal n.
  ClusterConfig short_set = cluster.client_config(ShardMap::uniform(1, 100));
  short_set.shards[0].replicas.pop_back();
  EXPECT_THROW(
      (void)ClusterClient(std::move(short_set), cluster.trusted_time()),
      common::PreconditionError);
}

TEST(ClusterClient, QuorumWritesAndVerifiedReadsAcrossShards) {
  ShardMap map = ShardMap::uniform(2, 100);
  ClusterRig cluster(map, QuorumParams{5, 1});
  ClusterClient client(cluster.client_config(map), cluster.trusted_time());

  // Round-robin across the two shards' global ranges; every replica acks.
  std::vector<core::Sn> want = {1, 101, 2, 102};
  for (std::size_t i = 0; i < want.size(); ++i) {
    QuorumWrite w = client.write(record("record " + std::to_string(i)));
    ASSERT_TRUE(w.ok) << w.message;
    EXPECT_FALSE(w.busy);
    EXPECT_EQ(w.acks, 5u);
    EXPECT_EQ(w.sn, want[i]);
  }

  for (std::size_t i = 0; i < want.size(); ++i) {
    QuorumRead r = client.read(want[i]);
    ASSERT_TRUE(r.trustworthy()) << r.verdict.detail;
    EXPECT_EQ(r.verdict.verdict, core::Verdict::kAuthentic);
    EXPECT_EQ(r.agreeing, 5u);
    EXPECT_TRUE(r.convictions.empty());
    const auto* ok = r.outcome.get_if<core::ReadOk>();
    ASSERT_NE(ok, nullptr);
    EXPECT_EQ(ok->payloads.at(0),
              common::to_bytes("record " + std::to_string(i)));
  }

  // Absence is quorum-proven too: an unallocated SN verifies as
  // never-existed on every honest replica.
  QuorumRead gone = client.read(50);
  EXPECT_TRUE(gone.trustworthy());
  EXPECT_EQ(gone.verdict.verdict, core::Verdict::kNeverExistedVerified);
  EXPECT_EQ(gone.agreeing, 5u);

  // Off the map entirely: a routing error, not a store answer.
  EXPECT_THROW((void)client.read(500), common::PreconditionError);

  // Writes forwarded attestations; each shard tracks its own watermark
  // (independent SCPUs — there is no single cluster watermark).
  EXPECT_TRUE(client.watermark(0).has_value());
  EXPECT_TRUE(client.watermark(1).has_value());
}

TEST(ClusterClient, ByzantineReplicaIsOutvotedAndConvicted) {
  ShardMap map = ShardMap::uniform(1, 1000);
  ClusterRig cluster(map, QuorumParams{5, 1});
  ClusterClient client(cluster.client_config(map), cluster.trusted_time());

  QuorumWrite w = client.write(record("evidence"));
  ASSERT_TRUE(w.ok) << w.message;
  ASSERT_EQ(w.sn, 1u);

  // Replica 2's insider forges the envelope in its VRDT: a litigation hold
  // appears that the SCPU never witnessed. The forgery is self-consistent
  // on that replica's host, so only verification against its own anchors —
  // not cross-replica comparison — can catch it.
  {
    ReplicaRig& byzantine = *cluster.replicas[0][2];
    auto* e = core::InsiderHandle(byzantine.rig.store).vrdt().mutable_entry(1);
    ASSERT_NE(e, nullptr);
    e->vrd.attr.litigation_hold = true;
  }

  QuorumRead r = client.read(1);
  // The four honest replicas still clear the read quorum (f+1 = 2)...
  ASSERT_TRUE(r.trustworthy()) << r.verdict.detail;
  EXPECT_EQ(r.verdict.verdict, core::Verdict::kAuthentic);
  EXPECT_EQ(r.agreeing, 4u);
  const auto* ok = r.outcome.get_if<core::ReadOk>();
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->payloads.at(0), common::to_bytes("evidence"));
  EXPECT_FALSE(ok->vrd.attr.litigation_hold);

  // ...and the forger is convicted by name, with the verifier's verdict.
  ASSERT_EQ(r.convictions.size(), 1u);
  EXPECT_EQ(r.convictions[0].shard, 0u);
  EXPECT_EQ(r.convictions[0].replica, 2u);
  EXPECT_EQ(r.convictions[0].verdict, core::Verdict::kTampered);
}

TEST(ClusterClient, VersionSkewRefreshesInsteadOfMisrouting) {
  // Servers run map v2; the client boots with the stale v1 view.
  ShardMap v2 = ShardMap::uniform(2, 100, /*version=*/2);
  ClusterRig cluster(v2, QuorumParams{5, 1});
  ClusterClient client(cluster.client_config(ShardMap::uniform(2, 100, 1)),
                       cluster.trusted_time());
  ASSERT_EQ(client.map().version(), 1u);

  // Every replica answers kStaleRoute to the v1-stamped frame; the client
  // fetches the v2 map over kShardMap, verifies the operator signature,
  // re-stamps, and retries — one write call, no misroute, no duplicate SN
  // (the retried frames are sequenced, so a replica that already committed
  // the slot would refuse a second copy with kSnMismatch).
  QuorumWrite w = client.write(record("skewed"));
  ASSERT_TRUE(w.ok) << w.message;
  EXPECT_EQ(w.sn, 1u);
  EXPECT_EQ(client.map().version(), 2u);

  QuorumRead r = client.read(1);
  ASSERT_TRUE(r.trustworthy()) << r.verdict.detail;
  EXPECT_EQ(r.agreeing, 5u);

  // A second stale client exercises the read-side refresh: its first read
  // hits kStaleRoute (a typed, retryable wire error — never a misroute)
  // and transparently lands after its own refresh.
  ClusterClient late(cluster.client_config(ShardMap::uniform(2, 100, 1)),
                     cluster.trusted_time());
  QuorumRead lr = late.read(1);
  ASSERT_TRUE(lr.trustworthy()) << lr.verdict.detail;
  EXPECT_EQ(late.map().version(), 2u);
  const auto* ok = lr.outcome.get_if<core::ReadOk>();
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->payloads.at(0), common::to_bytes("skewed"));

  // refresh_map reports whether the version moved.
  EXPECT_FALSE(client.refresh_map());  // already at v2
}

TEST(ShardRouter, FullShardsRejectAdmissionRetryably) {
  // Two shards of span 2: four writes fill the cluster. The fifth must be
  // refused at admission with a retryable error — not committed durably at
  // a local SN the global space cannot address.
  RouterRig rr(ShardMap::uniform(2, 2));
  for (int i = 0; i < 4; ++i) (void)rr.router->write(record("w"));
  EXPECT_THROW((void)rr.router->write(record("x")),
               common::TransientStorageError);
  // The refusal wrote nothing: both stores still hold exactly their span.
  auto m = rr.router->counters_snapshot(core::CounterFlush::kSettled).as_map();
  EXPECT_EQ(m.at("cluster.store.writes"), 4u);
}

TEST(ClusterClient, ForgedOrRolledBackShardMapIsNeverAdopted) {
  // Servers run map v2; the client boots at v1, so its first write forces a
  // refresh. The first three replicas asked serve hostile kShardMap
  // payloads: a v9 map signed by an attacker's key, a genuinely signed but
  // old v1 map (rollback), and raw unsigned map bytes. None may be adopted
  // — the first honest replica's operator-signed v2 map wins.
  ShardMap v2 = ShardMap::uniform(2, 100, /*version=*/2);
  crypto::Drbg rng(std::uint64_t{0xa77ac});
  crypto::RsaPrivateKey attacker = crypto::rsa_generate(rng, 512);
  Bytes forged = sign_shard_map(ShardMap::uniform(2, 100, 9), attacker);
  Bytes rollback =
      sign_shard_map(ShardMap::uniform(2, 100, 1), operator_key());
  Bytes raw = ShardMap::uniform(2, 100, 9).serialize();
  ClusterRig cluster(
      v2, QuorumParams{5, 1},
      [&](std::size_t s, std::uint32_t r, const Bytes& genuine) {
        if (s == 0 && r == 0) return forged;
        if (s == 0 && r == 1) return rollback;
        if (s == 0 && r == 2) return raw;
        return genuine;
      });
  ClusterClient client(cluster.client_config(ShardMap::uniform(2, 100, 1)),
                       cluster.trusted_time());

  QuorumWrite w = client.write(record("authentic routing"));
  ASSERT_TRUE(w.ok) << w.message;
  EXPECT_EQ(w.sn, 1u);
  // v9 forgery refused (wrong key), v1 refused (not strictly newer), raw
  // bytes refused (no envelope): the adopted map is the operator's v2.
  EXPECT_EQ(client.map().version(), 2u);
}

TEST(ClusterClient, ServerRefusesMissequencedWrites) {
  // The v4 expected_sn condition at one replica: a mismatched slot writes
  // nothing and counter-offers the replica's actual next SN.
  ReplicaRig standalone((server::ServerConfig()));
  server::ClientConfig cfg;
  cfg.tcp_port = standalone.server->port();
  cfg.principal = "alice";
  cfg.token = standalone.auth.mint("alice");
  server::WormClient client(std::move(cfg));

  // A pure probe (an SN no store ever assigns) learns the cursor, writes
  // nothing.
  server::WriteResult probe =
      client.write(record("probe"), ~static_cast<core::Sn>(0));
  ASSERT_TRUE(probe.sn_mismatch()) << probe.message;
  EXPECT_EQ(probe.sn, 1u);

  server::WriteResult wrong = client.write(record("wrong slot"), 5);
  ASSERT_TRUE(wrong.sn_mismatch()) << wrong.message;
  EXPECT_EQ(wrong.sn, 1u);

  server::WriteResult right = client.write(record("first"), 1);
  ASSERT_TRUE(right.ok()) << right.message;
  EXPECT_EQ(right.sn, 1u);

  // A retry of the committed slot is refused, never double-committed.
  server::WriteResult replay = client.write(record("first"), 1);
  ASSERT_TRUE(replay.sn_mismatch()) << replay.message;
  EXPECT_EQ(replay.sn, 2u);

  // Unsequenced writes (expected_sn = 0) still work for standalone use.
  server::WriteResult plain = client.write(record("second"));
  ASSERT_TRUE(plain.ok()) << plain.message;
  EXPECT_EQ(plain.sn, 2u);
}

TEST(ClusterClient, WriterPrincipalRestrictsWrites) {
  // Replicated deployments enforce the one-sequencer-per-shard assumption
  // server-side: only the configured principal may write; everyone reads.
  server::ServerConfig cfg;
  cfg.writer_principal = "alice";
  ReplicaRig rig(cfg);

  server::ClientConfig ac;
  ac.tcp_port = rig.server->port();
  ac.principal = "alice";
  ac.token = rig.auth.mint("alice");
  server::WormClient alice(std::move(ac));
  server::WriteResult w = alice.write(record("by the sequencer"), 1);
  ASSERT_TRUE(w.ok()) << w.message;

  server::ClientConfig bc;
  bc.tcp_port = rig.server->port();
  bc.principal = "bob";
  bc.token = rig.auth.mint("bob");
  server::WormClient bob(std::move(bc));
  EXPECT_THROW((void)bob.write(record("interloper"), 2), common::Error);
  EXPECT_THROW((void)bob.write(record("interloper")), common::Error);

  core::ReadOutcome out = bob.read(1);
  const auto* ok = out.get_if<core::ReadOk>();
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->payloads.at(0), common::to_bytes("by the sequencer"));
}

TEST(ClusterClient, LaggardReplicaIsRepairedFromQuorumReads) {
  ShardMap map = ShardMap::uniform(1, 100);
  ClusterRig cluster(map, QuorumParams{5, 1});
  // Replicas 0-3 already hold two records; replica 4 slept through both
  // (it answers kSnMismatch with next=1 while the quorum's frontier is 3).
  for (std::uint32_t i = 0; i < 4; ++i) {
    Rig& rig = cluster.replicas[0][i]->rig;
    core::WormSession session(rig.store, "backfill", rig.clock);
    ASSERT_EQ(session.write(record("seed-1")), 1u);
    ASSERT_EQ(session.write(record("seed-2")), 2u);
  }
  ClusterClient client(cluster.client_config(map), cluster.trusted_time());

  // The probe learns cursor 3 (the (f+1)-th largest counter-offer, so the
  // lone laggard's next=1 cannot drag it back), the quorum commits at 3,
  // and the repair path backfills the laggard: seed-1, seed-2, then the
  // fresh record at slot 3.
  QuorumWrite w = client.write(record("fresh"));
  ASSERT_TRUE(w.ok) << w.message;
  EXPECT_EQ(w.sn, 3u);
  EXPECT_EQ(w.acks, 4u);
  EXPECT_EQ(w.repaired, 3u);
  EXPECT_TRUE(w.convictions.empty());

  // After repair, all five replicas agree on every slot.
  for (core::Sn sn = 1; sn <= 3; ++sn) {
    QuorumRead r = client.read(sn);
    ASSERT_TRUE(r.trustworthy()) << "sn " << sn << ": " << r.verdict.detail;
    EXPECT_EQ(r.agreeing, 5u) << "sn " << sn;
    EXPECT_TRUE(r.convictions.empty()) << "sn " << sn;
  }
  QuorumRead first = client.read(1);
  const auto* ok = first.outcome.get_if<core::ReadOk>();
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->payloads.at(0), common::to_bytes("seed-1"));

  // Steady state: the cursor is established, everyone acks, nothing to
  // repair.
  QuorumWrite w2 = client.write(record("steady"));
  ASSERT_TRUE(w2.ok) << w2.message;
  EXPECT_EQ(w2.sn, 4u);
  EXPECT_EQ(w2.acks, 5u);
  EXPECT_EQ(w2.repaired, 0u);
}

TEST(ClusterClient, StandaloneServerHasNoShardMap) {
  // A server with no cluster membership rejects kShardMap as kBadRequest;
  // the client library surfaces it as an error rather than an empty map.
  ReplicaRig standalone((server::ServerConfig()));
  server::ClientConfig cfg;
  cfg.tcp_port = standalone.server->port();
  cfg.principal = "alice";
  cfg.token = standalone.auth.mint("alice");
  server::WormClient client(std::move(cfg));
  EXPECT_THROW((void)client.fetch_shard_map(), common::Error);
}

}  // namespace
}  // namespace worm::cluster
