// Edge cases of the host-side worker pool: empty work sets, zero-worker
// degradation, exceptions crossing parallel_for, and reentrant submission.
// The happy path is exercised constantly through WormStore's read pool;
// these are the corners that path never hits.
#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <latch>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace worm::common {
namespace {

TEST(ThreadPool, ParallelForZeroTasksIsANoOp) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ParallelForSingleItemRunsOnCaller) {
  ThreadPool pool(4);
  std::thread::id runner;
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    runner = std::this_thread::get_id();
  });
  // With one item there are no helper lanes; the caller is the only one.
  EXPECT_EQ(runner, std::this_thread::get_id());
}

TEST(ThreadPool, ZeroWorkerPoolRunsSubmitInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  std::thread::id runner;
  pool.submit([&] { runner = std::this_thread::get_id(); });
  // No workers: the task already ran, on this thread.
  EXPECT_EQ(runner, std::this_thread::get_id());
}

TEST(ThreadPool, ZeroWorkerParallelForIsSequential) {
  ThreadPool pool(0);
  std::vector<std::size_t> order;
  pool.parallel_for(8, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  pool.parallel_for(kN, [&](std::size_t i) { counts[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForRethrowsTaskException) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 64;
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(kN,
                        [&](std::size_t i) {
                          if (i == 17) throw std::runtime_error("item 17");
                          completed.fetch_add(1);
                        }),
      std::runtime_error);
  // The failure does not abandon the rest of the work set: every other
  // item still ran before the rethrow.
  EXPECT_EQ(completed.load(), static_cast<int>(kN) - 1);
}

TEST(ThreadPool, ParallelForKeepsFirstExceptionWhenAllThrow) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(16, [&](std::size_t i) {
      throw std::runtime_error("item " + std::to_string(i));
    });
    FAIL() << "parallel_for swallowed the exceptions";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("item ", 0), 0u);
  }
}

TEST(ThreadPool, ExceptionInZeroWorkerParallelForPropagatesInline) {
  ThreadPool pool(0);
  EXPECT_THROW(
      pool.parallel_for(3, [](std::size_t) { throw Error("inline failure"); }),
      Error);
}

TEST(ThreadPool, ReentrantSubmitFromInsideATask) {
  ThreadPool pool(2);
  std::latch both_ran(2);
  std::atomic<int> inner_ran{0};
  pool.submit([&] {
    pool.submit([&] {
      inner_ran.fetch_add(1);
      both_ran.count_down();
    });
    both_ran.count_down();
  });
  both_ran.wait();
  EXPECT_EQ(inner_ran.load(), 1);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  // Queue work behind a blocked worker, then destroy the pool: workers exit
  // only once stop_ is set AND the queue is empty, so everything queued
  // before destruction still runs.
  std::atomic<int> ran{0};
  std::latch gate(1);
  {
    ThreadPool pool(1);
    pool.submit([&] { gate.wait(); });
    for (int i = 0; i < 50; ++i) pool.submit([&] { ran.fetch_add(1); });
    gate.count_down();
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, ReentrantSubmitChainDrainsOnDestruction) {
  // Each task enqueues the next; the chain keeps extending the queue while
  // the destructor is already draining it. Raw new/delete on purpose:
  // unique_ptr::reset() nulls the pointer before destroying, and the chain
  // must still reach the pool mid-destruction.
  std::atomic<int> depth{0};
  constexpr int kDepth = 100;
  auto* pool = new ThreadPool(1);
  std::function<void()> step = [&] {
    if (depth.fetch_add(1) + 1 < kDepth) pool->submit(step);
  };
  pool->submit(step);
  delete pool;
  EXPECT_EQ(depth.load(), kDepth);
}

TEST(ThreadPool, NullTaskIsRejected) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(std::function<void()>()), PreconditionError);
}

}  // namespace
}  // namespace worm::common
