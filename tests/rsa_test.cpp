// RSA tests: keygen invariants, sign/verify round-trips at the paper's three
// key strengths (512/1024/2048), tamper detection, and serialization.
// Keys are generated once per strength and shared across tests (keygen is
// the expensive part).
#include <gtest/gtest.h>

#include <map>

#include "common/error.hpp"
#include "crypto/drbg.hpp"
#include "crypto/prime.hpp"
#include "crypto/rsa.hpp"

namespace worm::crypto {
namespace {

using common::Bytes;
using common::to_bytes;

const RsaPrivateKey& cached_key(std::size_t bits) {
  static std::map<std::size_t, RsaPrivateKey> cache;
  auto it = cache.find(bits);
  if (it == cache.end()) {
    Drbg rng(0x5157ull + bits);
    it = cache.emplace(bits, rsa_generate(rng, bits)).first;
  }
  return it->second;
}

class RsaStrengths : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(PaperKeySizes, RsaStrengths,
                         ::testing::Values(512, 768, 1024, 2048),
                         [](const auto& param_info) {
                           return "bits" + std::to_string(param_info.param);
                         });

TEST_P(RsaStrengths, KeygenInvariants) {
  const RsaPrivateKey& k = cached_key(GetParam());
  EXPECT_EQ(k.n.bit_length(), GetParam());
  EXPECT_EQ(k.e, BigUInt(65537));
  EXPECT_EQ(k.p * k.q, k.n);
  Drbg rng(1);
  EXPECT_TRUE(is_probable_prime(k.p, rng));
  EXPECT_TRUE(is_probable_prime(k.q, rng));
  // e*d == 1 mod phi(n)
  BigUInt phi = (k.p - BigUInt(1)) * (k.q - BigUInt(1));
  EXPECT_EQ((k.e * k.d) % phi, BigUInt(1));
  // CRT components consistent.
  EXPECT_EQ(k.dp, k.d % (k.p - BigUInt(1)));
  EXPECT_EQ(k.dq, k.d % (k.q - BigUInt(1)));
  EXPECT_EQ((k.q * k.qinv) % k.p, BigUInt(1));
}

TEST_P(RsaStrengths, SignVerifyRoundTrip) {
  const RsaPrivateKey& k = cached_key(GetParam());
  Bytes msg = to_bytes("compliance record #42");
  Bytes sig = rsa_sign(k, msg);
  EXPECT_EQ(sig.size(), GetParam() / 8);
  EXPECT_TRUE(rsa_verify(k.public_key(), msg, sig));
}

TEST_P(RsaStrengths, VerifyRejectsTamperedMessage) {
  const RsaPrivateKey& k = cached_key(GetParam());
  Bytes sig = rsa_sign(k, to_bytes("original"));
  EXPECT_FALSE(rsa_verify(k.public_key(), to_bytes("altered"), sig));
}

TEST_P(RsaStrengths, VerifyRejectsTamperedSignature) {
  const RsaPrivateKey& k = cached_key(GetParam());
  Bytes msg = to_bytes("message");
  Bytes sig = rsa_sign(k, msg);
  for (std::size_t pos : {std::size_t{0}, sig.size() / 2, sig.size() - 1}) {
    Bytes bad = sig;
    bad[pos] ^= 0x01;
    EXPECT_FALSE(rsa_verify(k.public_key(), msg, bad)) << "pos=" << pos;
  }
}

TEST_P(RsaStrengths, VerifyRejectsWrongKey) {
  const RsaPrivateKey& k = cached_key(GetParam());
  Drbg rng(77);
  RsaPrivateKey other = rsa_generate(rng, GetParam());
  Bytes msg = to_bytes("message");
  EXPECT_FALSE(rsa_verify(other.public_key(), msg, rsa_sign(k, msg)));
}

TEST(Rsa, VerifyRejectsMalformedSignatures) {
  const RsaPrivateKey& k = cached_key(512);
  Bytes msg = to_bytes("m");
  EXPECT_FALSE(rsa_verify(k.public_key(), msg, Bytes{}));
  EXPECT_FALSE(rsa_verify(k.public_key(), msg, Bytes(63, 0)));   // short
  EXPECT_FALSE(rsa_verify(k.public_key(), msg, Bytes(65, 0)));   // long
  // s >= n must be rejected outright.
  Bytes huge = k.n.to_be_bytes_padded(64);
  EXPECT_FALSE(rsa_verify(k.public_key(), msg, huge));
}

TEST(Rsa, SignaturesAreDeterministic) {
  // PKCS#1 v1.5 is deterministic — a property the VRDT dedup logic may rely
  // on (re-signing the same VRD yields the same bytes).
  const RsaPrivateKey& k = cached_key(512);
  Bytes msg = to_bytes("same message");
  EXPECT_EQ(rsa_sign(k, msg), rsa_sign(k, msg));
}

TEST(Rsa, DistinctMessagesDistinctSignatures) {
  const RsaPrivateKey& k = cached_key(512);
  EXPECT_NE(rsa_sign(k, to_bytes("a")), rsa_sign(k, to_bytes("b")));
}

TEST(Rsa, EmptyMessageSigns) {
  const RsaPrivateKey& k = cached_key(512);
  Bytes sig = rsa_sign(k, Bytes{});
  EXPECT_TRUE(rsa_verify(k.public_key(), Bytes{}, sig));
}

TEST(Rsa, PublicKeySerializationRoundTrip) {
  const RsaPrivateKey& k = cached_key(1024);
  RsaPublicKey pub = k.public_key();
  EXPECT_EQ(RsaPublicKey::deserialize(pub.serialize()), pub);
}

TEST(Rsa, PrivateKeySerializationRoundTrip) {
  const RsaPrivateKey& k = cached_key(1024);
  RsaPrivateKey back = RsaPrivateKey::deserialize(k.serialize());
  EXPECT_EQ(back.n, k.n);
  EXPECT_EQ(back.d, k.d);
  EXPECT_EQ(back.qinv, k.qinv);
  // The deserialized key must still sign correctly.
  Bytes msg = to_bytes("after round trip");
  EXPECT_TRUE(rsa_verify(back.public_key(), msg, rsa_sign(back, msg)));
}

TEST(Rsa, DeserializeRejectsGarbage) {
  EXPECT_THROW(RsaPublicKey::deserialize(to_bytes("nonsense")),
               common::ParseError);
}

TEST(Rsa, GenerateRejectsTinyModulus) {
  Drbg rng(5);
  EXPECT_THROW(rsa_generate(rng, 256), common::PreconditionError);
  EXPECT_THROW(rsa_generate(rng, 513), common::PreconditionError);
}

TEST(Rsa, CrossKeySizeIsolation) {
  // A 512-bit signature never verifies under the 1024-bit public key.
  Bytes msg = to_bytes("m");
  Bytes sig512 = rsa_sign(cached_key(512), msg);
  EXPECT_FALSE(rsa_verify(cached_key(1024).public_key(), msg, sig512));
}

}  // namespace
}  // namespace worm::crypto
