// Shared rig for the fault-injection and crash-recovery suites: one full
// deployment whose WormStore can be torn down and rebooted over persistent
// firmware / device / record store / journal (the host process dying, not
// the machine room), with a FaultInjector threaded through every untrusted
// layer's fault points.
#pragma once

#include <gtest/gtest.h>

#include <cstdio>
#include <optional>
#include <string>
#include <utility>

#include "common/serial.hpp"
#include "worm_fixture.hpp"

namespace worm::testing {

/// Store config for deterministic fault runs: free transport and zero retry
/// waits, so a faulted run and an uninjected reference advance their clocks
/// in lockstep (signatures embed SCPU timestamps, so proof-stream
/// equivalence needs time pinned on both sides).
inline core::StoreConfig lockstep_store_config() {
  core::StoreConfig c;
  c.host_model = scpu::CostModel::zero();
  c.mailbox.charge_transfer = false;
  c.mailbox.retry_initial_backoff = common::Duration::nanos(0);
  c.mailbox.response_timeout = common::Duration::nanos(0);
  return c;
}

/// One deployment whose store lives in std::optional so tests can crash it
/// (destroy — all host soft state gone) and reboot it (reconstruct +
/// recover()) while everything below the host process persists.
///
/// `journal_name` empty disables journaling; otherwise the journal file
/// lives under the gtest temp dir and is removed up front so reruns start
/// clean. Pass `with_faults = false` for an uninjected reference rig.
struct CrashRig {
  explicit CrashRig(const std::string& journal_name,
                    bool with_faults = true,
                    std::uint64_t fault_seed = 0x5eed,
                    core::FirmwareConfig fw_config = slow_timers_config(),
                    core::StoreConfig store_config = lockstep_store_config())
      : fault(fault_seed, &clock),
        device(clock, scpu::CostModel::zero(), 32u << 20),
        firmware(device, fw_config, regulator_key().public_key()),
        disk(4096, 4096, &clock, storage::LatencyModel::none()),
        records(disk),
        config(std::move(store_config)) {
    if (!journal_name.empty()) {
      config.journal_path = ::testing::TempDir() + journal_name;
      std::remove(config.journal_path.c_str());
    }
    if (with_faults) {
      config.fault = &fault;
      disk.set_fault_injector(&fault);
    }
    boot();
  }

  /// (Re)constructs the store over the persistent lower layers. After a
  /// crash the caller decides whether to recover() (journaled rigs).
  void boot() { store.emplace(clock, firmware, records, config); }

  /// The host process dies: every bit of soft state (VRDT, mirrors, caches,
  /// pending intents) is gone. The device, disk and journal survive.
  void crash() { store.reset(); }

  core::WormStore::RecoveryReport crash_and_recover() {
    crash();
    boot();
    return store->recover();
  }

  core::Attr attr(common::Duration retention) const {
    core::Attr a;
    a.retention = retention;
    a.shredding = storage::ShredPolicy::kZeroFill;
    a.regulation_policy = 17;
    return a;
  }

  core::Sn put(const std::string& text, common::Duration retention,
               std::optional<core::WitnessMode> mode = std::nullopt) {
    return store->write({.payloads = {common::to_bytes(text)},
                         .attr = attr(retention),
                         .mode = mode});
  }

  core::ClientVerifier verifier() {
    return core::ClientVerifier(store->anchors(), clock);
  }

  common::SimClock clock;
  common::FaultInjector fault;
  scpu::ScpuDevice device;
  core::Firmware firmware;
  storage::MemBlockDevice disk;
  storage::RecordStore records;
  core::StoreConfig config;
  std::optional<core::WormStore> store;
};

/// Canonical byte fingerprint of a read outcome for proof-stream
/// equivalence: the status plus every proof-bearing field, serialized.
/// The RDL is deliberately excluded — it is host-local block bookkeeping
/// outside every signature, and a faulted run that re-stores a payload
/// after a torn write legitimately lands on different blocks.
/// Unavailable/Failure fingerprints carry only the status — their reasons
/// are diagnostics, not proofs.
inline common::Bytes outcome_fingerprint(const core::ReadOutcome& r) {
  common::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(r.status()));
  if (const auto* ok = r.get_if<core::ReadOk>()) {
    w.u64(ok->vrd.sn);
    ok->vrd.attr.serialize(w);
    w.blob(ok->vrd.data_hash);
    ok->vrd.metasig.serialize(w);
    ok->vrd.datasig.serialize(w);
    w.u32(static_cast<std::uint32_t>(ok->payloads.size()));
    for (const auto& p : ok->payloads) w.blob(p);
  } else if (const auto* del = r.get_if<core::ReadDeleted>()) {
    del->proof.serialize(w);
  } else if (const auto* base = r.get_if<core::ReadBelowBase>()) {
    // Freshness certificates (base / sn_current attestations) are re-signed
    // whenever a rig happens to refresh them, so their timestamps and
    // signature bytes differ legitimately between a recovering run and the
    // reference. The fingerprint compares the signed CLAIM; the signatures
    // themselves are exercised by the ClientVerifier sweeps.
    w.u64(base->base.sn_base);
  } else if (r.get_if<core::ReadNotAllocated>() != nullptr) {
    // Carries only the status: the attestation's sn_current is whatever the
    // rig's last heartbeat happened to witness (a recovering rig re-stamps
    // it, the reference may still hold its boot-time one) — every value is
    // an equally honest "not yet allocated as of the stamp".
  } else if (const auto* win = r.get_if<core::ReadInDeletedWindow>()) {
    w.u64(win->window.lo);
    w.u64(win->window.hi);
  }
  return w.take();
}

}  // namespace worm::testing
