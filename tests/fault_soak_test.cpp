// Randomized crash/restart soak (ctest label: faults). Every iteration
// schedules a deterministic fault at one of seven sites spanning the disk,
// the record store, the mailbox transport and the journal, drives one write
// through the faulted deployment, then kills and recovers the host process.
// An uninjected reference deployment (same firmware seed, lockstep clock)
// runs the identical workload, and the two proof streams must stay
// byte-identical: no fault schedule may ever produce a WORM violation —
// only unavailability, which recovery then clears.
#include <gtest/gtest.h>

#include <array>
#include <map>

#include "crypto/drbg.hpp"
#include "fault_fixture.hpp"

namespace worm::core {
namespace {

using common::Bytes;
using common::Duration;
using common::FaultKind;
using worm::testing::CrashRig;
using worm::testing::outcome_fingerprint;

struct SiteProfile {
  const char* site;
  std::vector<FaultKind> kinds;
};

// The soak's fault surface. device.write deliberately omits kBitFlip:
// corrupting the stored medium is the *tampering* scenario (adversary_test's
// beat), not a crash-consistency fault, and would rightly diverge the
// payload stream.
const std::array<SiteProfile, 7>& soak_sites() {
  static const std::array<SiteProfile, 7> kSites = {{
      {"device.read", {FaultKind::kTransient, FaultKind::kBitFlip}},
      {"device.write", {FaultKind::kTransient, FaultKind::kTorn}},
      {"records.read", {FaultKind::kTransient}},
      {"records.write", {FaultKind::kTransient}},
      {"channel.request",
       {FaultKind::kDrop, FaultKind::kBitFlip, FaultKind::kDuplicate,
        FaultKind::kTimeout}},
      {"channel.response",
       {FaultKind::kDrop, FaultKind::kBitFlip, FaultKind::kTimeout}},
      {"journal.append", {FaultKind::kTransient, FaultKind::kTorn}},
  }};
  return kSites;
}

/// Asserts the faulted store answers every SN exactly like the reference.
/// Runs with faults disarmed, so unavailability is not a legal answer here —
/// and a ReadFailure or verdict divergence never is.
void expect_equivalent_proof_streams(CrashRig& faulted, CrashRig& reference,
                                     int iteration) {
  ASSERT_EQ(faulted.firmware.sn_current(), reference.firmware.sn_current());
  Sn top = reference.firmware.sn_current() + 3;  // overshoot: absence proofs
  for (Sn sn = 1; sn <= top; ++sn) {
    ReadOutcome f = faulted.store->read(sn);
    ReadOutcome r = reference.store->read(sn);
    ASSERT_FALSE(f.is<ReadFailure>())
        << "iteration " << iteration << ", SN " << sn
        << ": faulted store lost a record — WORM violation";
    ASSERT_EQ(outcome_fingerprint(f), outcome_fingerprint(r))
        << "iteration " << iteration << ", SN " << sn
        << ": proof streams diverged (faulted=" << to_string(f.status())
        << ", reference=" << to_string(r.status()) << ")";
  }
}

TEST(FaultSoak, CrashRestartStormPreservesProofStreamEquivalence) {
  constexpr int kIterations = 600;  // >= 500 crash/restart cycles

  CrashRig faulted("fault_soak.wal", /*with_faults=*/true);
  CrashRig reference("", /*with_faults=*/false);
  crypto::Drbg rng(0xdecaf);

  int crashes = 0;
  std::uint64_t resent_total = 0;  // across host lifetimes — counters reset
  std::map<std::string, std::uint64_t> fires_by_site;

  for (int i = 0; i < kIterations; ++i) {
    // --- one deterministic fault, armed for this iteration only ----------
    const SiteProfile& profile =
        soak_sites()[static_cast<std::size_t>(i) % soak_sites().size()];
    const char* fired_site = profile.site;
    bool outage = (i % 13 == 5);
    if (outage) {
      // A full response outage: the device executes but every answer is
      // lost. The host times out with a journaled intent still pending, and
      // recovery must resend it through the (seq, crc) dedup cache — the
      // one-shot faults below never get that far, the retry budget absorbs
      // them before the timeout.
      fired_site = "channel.response";
      faulted.fault.arm(fired_site, {.kind = FaultKind::kDrop});
    } else {
      FaultKind kind = profile.kinds[rng.uniform(profile.kinds.size())];
      faulted.fault.schedule(profile.site, kind, 1 + rng.uniform(3));
    }

    // --- the workload step, identical on both sides -----------------------
    bool expiring = (i % 5 == 0);
    Duration retention = expiring
                             ? Duration::minutes(10 + static_cast<std::int64_t>(
                                                          rng.uniform(60)))
                             : Duration::days(2 + static_cast<std::int64_t>(
                                                      rng.uniform(30)));
    auto mode = static_cast<WitnessMode>(rng.uniform(3));
    std::string text = "soak record " + std::to_string(i);
    Sn expect_sn = reference.firmware.sn_current() + 1;

    std::uint64_t fires_before = faulted.fault.injected_total();
    try {
      Sn got = faulted.put(text, retention, mode);
      ASSERT_EQ(got, expect_sn);
    } catch (const common::TransientStorageError&) {
      // Storage or journal fault before the crossing: nothing materialized.
    } catch (const ChannelTimeoutError&) {
      // Transport fault past the retry budget: the device may or may not
      // have executed — exactly what recovery reconciles.
    }
    // A probe read while the fault is still armed: the write-only workload
    // above never evaluates the read-path sites (device.read, records.read),
    // and a faulted read must degrade to unavailable at worst — never throw.
    if (faulted.firmware.sn_current() >= 1) {
      Sn probe = 1 + rng.uniform(faulted.firmware.sn_current());
      (void)faulted.store->read(probe);
    }
    fires_by_site[fired_site] += faulted.fault.injected_total() - fires_before;
    faulted.fault.disarm_all();

    // --- kill the host process, reboot, recover ---------------------------
    resent_total += faulted.crash_and_recover().resent;
    ++crashes;
    ASSERT_FALSE(faulted.store->degraded());

    if (faulted.firmware.sn_current() < expect_sn) {
      // The op neither executed nor left a resendable intent: a client
      // retry (the protocol's answer to unavailability) must now succeed.
      ASSERT_EQ(faulted.put(text, retention, mode), expect_sn)
          << "iteration " << i;
    }
    ASSERT_EQ(faulted.firmware.sn_current(), expect_sn) << "iteration " << i;

    // Mirror the op to the reference deployment.
    ASSERT_EQ(reference.put(text, retention, mode), expect_sn);

    // --- identical passage of time, identical idle work -------------------
    faulted.clock.advance(Duration::minutes(1));
    reference.clock.advance(Duration::minutes(1));
    while (faulted.store->pump_idle()) {
    }
    while (reference.store->pump_idle()) {
    }

    // The just-written SN must already match across the rigs.
    ASSERT_EQ(outcome_fingerprint(faulted.store->read(expect_sn)),
              outcome_fingerprint(reference.store->read(expect_sn)))
        << "iteration " << i;

    if ((i + 1) % 50 == 0) {
      expect_equivalent_proof_streams(faulted, reference, i);
    }
  }

  // --- acceptance bookkeeping ---------------------------------------------
  EXPECT_GE(crashes, 500);
  int sites_fired = 0;
  for (const auto& profile : soak_sites()) {
    std::uint64_t fires = fires_by_site[profile.site];
    if (fires > 0) ++sites_fired;
  }
  EXPECT_GE(sites_fired, 6) << "fault surface under-exercised";
  EXPECT_GT(resent_total, 0u);
  EXPECT_GT(faulted.store->counters().at("fault.injected"), 0u);

  // Final full equivalence sweep, plus the client's own verdicts: nothing
  // in the faulted stream may verify worse than the reference stream.
  expect_equivalent_proof_streams(faulted, reference, kIterations);
  ClientVerifier verifier = faulted.verifier();
  for (Sn sn = 1; sn <= faulted.firmware.sn_current(); ++sn) {
    Outcome out = verifier.verify_read(sn, faulted.store->read(sn));
    EXPECT_NE(out.verdict, Verdict::kTampered) << "SN " << sn << ": "
                                               << out.detail;
    EXPECT_NE(out.verdict, Verdict::kUnavailable) << "SN " << sn;
  }
}

TEST(FaultSoak, ContinuousLowProbabilityFaultsWithPeriodicCrashes) {
  // A different texture: every site armed at low probability for the whole
  // run (faults can now hit heartbeats, idle duties and reads too), crashes
  // only every few iterations, reads served while faults are live. The
  // invariant is weaker — reads may be transiently unavailable — but
  // unavailability must clear by the disarmed final sweep, and no read may
  // ever come back as a proofless failure.
  CrashRig faulted("fault_soak_cont.wal", /*with_faults=*/true, 0xbad5eed);
  CrashRig reference("", /*with_faults=*/false);
  crypto::Drbg rng(0x50a2);

  for (const auto& profile : soak_sites()) {
    // Drops and transients only: always retryable, never state-corrupting.
    FaultKind kind = profile.kinds[0];
    faulted.fault.arm(profile.site, {.kind = kind, .probability = 0.02});
  }

  constexpr int kIterations = 120;
  for (int i = 0; i < kIterations; ++i) {
    std::string text = "cont record " + std::to_string(i);
    Duration retention = Duration::days(3);
    Sn expect_sn = reference.firmware.sn_current() + 1;
    bool done = false;
    for (int attempt = 0; attempt < 8 && !done; ++attempt) {
      try {
        ASSERT_EQ(faulted.put(text, retention, WitnessMode::kStrong),
                  expect_sn);
        done = true;
      } catch (const common::TransientStorageError&) {
        // Storage and journal faults fire on both sides of the crossing: a
        // post-crossing one (journaling the soft-state update, say) leaves
        // the command executed with the host unaware — reconcile below.
      } catch (const ChannelTimeoutError&) {
        // May have executed; reconcile through recovery before retrying.
      }
      if (!done && faulted.firmware.sn_current() == expect_sn) {
        (void)faulted.crash_and_recover();
        done = faulted.firmware.sn_current() == expect_sn;
      }
    }
    ASSERT_TRUE(done) << "iteration " << i
                      << ": retry storm failed to land the write";
    ASSERT_EQ(reference.put(text, retention, WitnessMode::kStrong), expect_sn);

    // Reads under live faults: unavailable is legal, failure never.
    ReadOutcome res = faulted.store->read(expect_sn);
    EXPECT_FALSE(res.is<ReadFailure>()) << "iteration " << i;

    if (i % 10 == 9) (void)faulted.crash_and_recover();
  }

  faulted.fault.disarm_all();
  (void)faulted.crash_and_recover();
  expect_equivalent_proof_streams(faulted, reference, kIterations);
}

}  // namespace
}  // namespace worm::core
