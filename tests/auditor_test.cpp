// Whole-store audit + full host-restart integration: the auditor must count
// every issued serial number exactly once, flag every attack the adversary
// module can mount, and keep working across a complete power cycle (NVRAM +
// persisted VRDT + record-store allocator state over a file-backed device).
#include <gtest/gtest.h>

#include "adversary/mallory.hpp"
#include "worm/auditor.hpp"
#include "worm_fixture.hpp"

namespace worm::core {
namespace {

using common::Bytes;
using common::Duration;
using common::to_bytes;
using worm::testing::Rig;

TEST(Auditor, EmptyStoreIsClean) {
  Rig rig;
  AuditReport report = Auditor::audit_store(rig.store, rig.verifier);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.scanned(), 0u);
}

TEST(Auditor, MixedLifecycleCountsAddUp) {
  Rig rig;
  for (int i = 0; i < 6; ++i) rig.put("live", Duration::days(30));
  for (int i = 0; i < 4; ++i) rig.put("dying", Duration::hours(1));
  rig.put("hmac", Duration::days(30), WitnessMode::kHmac);
  rig.clock.advance(Duration::hours(2));  // the 4 short ones expire

  AuditReport report = Auditor::audit_store(rig.store, rig.verifier);
  EXPECT_TRUE(report.clean()) << Auditor::summarize(report);
  EXPECT_EQ(report.scanned(), 11u);
  EXPECT_EQ(report.authentic, 6u);
  EXPECT_EQ(report.deleted_verified, 4u);
  EXPECT_EQ(report.unverifiable_yet, 1u);
}

TEST(Auditor, CountsStayCorrectAfterCompactionAndBaseAdvance) {
  Rig rig;
  for (int i = 0; i < 10; ++i) rig.put("r", Duration::hours(1));
  Sn live = rig.put("live", Duration::days(30));
  rig.clock.advance(Duration::hours(2));
  while (rig.store.pump_idle()) {
  }
  // All 10 proofs are gone from the VRDT (base advanced), yet the audit
  // still accounts for every SN via the signed base.
  AuditReport report = Auditor::audit_store(rig.store, rig.verifier);
  EXPECT_TRUE(report.clean()) << Auditor::summarize(report);
  EXPECT_EQ(report.deleted_verified, 10u);
  EXPECT_EQ(report.authentic, 1u);
  EXPECT_EQ(report.last_sn, live);
}

TEST(Auditor, FlagsEveryAttackKind) {
  Rig rig;
  crypto::Drbg rng(0xa0d1);
  Sn tampered = rig.put("will be tampered", Duration::days(30));
  Sn hidden = rig.put("will be hidden", Duration::days(30));
  Sn forged = rig.put("will get forged proof", Duration::days(30));
  Sn honest = rig.put("honest", Duration::days(30));
  rig.clock.advance(Duration::minutes(3));  // heartbeat covers all four

  adversary::tamper_record_data(rig.store, rig.disk, tampered);
  adversary::hide_record(rig.store, hidden);
  adversary::forge_deletion(rig.store, forged, rng);

  AuditReport report = Auditor::audit_store(rig.store, rig.verifier);
  EXPECT_EQ(report.findings.size(), 3u) << Auditor::summarize(report);
  EXPECT_EQ(report.authentic, 1u);
  std::set<Sn> flagged;
  for (const auto& f : report.findings) flagged.insert(f.sn);
  EXPECT_EQ(flagged, (std::set<Sn>{tampered, hidden, forged}));
  (void)honest;
}

TEST(Auditor, RangeAuditSubsets) {
  Rig rig;
  for (int i = 0; i < 10; ++i) rig.put("r", Duration::days(30));
  AuditReport report = Auditor::audit_range(rig.store, rig.verifier, 3, 7);
  EXPECT_EQ(report.scanned(), 5u);
  EXPECT_EQ(report.authentic, 5u);
}

TEST(Auditor, SummaryMentionsFindings) {
  Rig rig;
  Sn sn = rig.put("x", Duration::days(30));
  rig.clock.advance(Duration::minutes(3));
  adversary::tamper_record_data(rig.store, rig.disk, sn);
  AuditReport report = Auditor::audit_store(rig.store, rig.verifier);
  std::string s = Auditor::summarize(report);
  EXPECT_NE(s.find("1 finding"), std::string::npos) << s;
  EXPECT_NE(s.find("TAMPERED"), std::string::npos) << s;
}

// ---------------------------------------------------------------------------
// Full host restart over persistent media
// ---------------------------------------------------------------------------

TEST(Restart, FullPowerCycleOverFileBackedDevice) {
  std::string dir = ::testing::TempDir();
  std::string disk_path = dir + "/restart_disk.bin";
  std::string vrdt_path = dir + "/restart_vrdt.bin";
  core::FirmwareConfig cfg = worm::testing::slow_timers_config();

  common::SimClock clock;
  Bytes nvram, rs_state;
  Sn live = 0, dying = 0;

  {  // --- first boot: ingest, then shut down cleanly ---
    scpu::ScpuDevice device(clock, scpu::CostModel::ibm4764());
    Firmware fw(device, cfg, worm::testing::regulator_key().public_key());
    storage::FileBlockDevice disk(disk_path, 4096, 256);
    storage::RecordStore records(disk);
    WormStore store(clock, fw, records, StoreConfig{});

    Attr keep;
    keep.retention = Duration::days(30);
    Attr brief;
    brief.retention = Duration::hours(1);
    live = store.write(
        {.payloads = {to_bytes("survives the reboot")}, .attr = keep});
    dying = store.write(
        {.payloads = {to_bytes("expires after the reboot")}, .attr = brief});

    store.vrdt().save(vrdt_path);
    rs_state = records.save_state();
    nvram = fw.save_nvram();
    disk.flush();
  }

  {  // --- second boot: restore every component, continue operating ---
    scpu::ScpuDevice device(clock, scpu::CostModel::ibm4764());
    Firmware fw(device, cfg, worm::testing::regulator_key().public_key());
    fw.restore_nvram(nvram);
    storage::FileBlockDevice disk(disk_path, 4096, 256);
    storage::RecordStore records(disk);
    records.restore_state(rs_state);
    WormStore store(clock, fw, records, StoreConfig{});
    store.adopt_vrdt(Vrdt::load(vrdt_path));
    ClientVerifier verifier(store.anchors(), clock);

    // Old data verifies under the restored keys.
    EXPECT_EQ(verifier.verify_read(live, store.read(live)).verdict,
              Verdict::kAuthentic);

    // Retention continues: the restored VEXP fires after the reboot.
    clock.advance(Duration::hours(2));
    EXPECT_EQ(verifier.verify_read(dying, store.read(dying)).verdict,
              Verdict::kDeletedVerified);

    // New writes continue the serial-number sequence (no counter reset).
    Attr keep;
    keep.retention = Duration::days(30);
    Sn next = store.write(
        {.payloads = {to_bytes("post-reboot record")}, .attr = keep});
    EXPECT_EQ(next, dying + 1);

    // Allocator state survived: the new record did not overwrite live data.
    EXPECT_EQ(common::to_string(
                  store.read(live).get<ReadOk>().payloads.at(0)),
              "survives the reboot");

    // A full audit over the whole (pre- and post-reboot) history is clean.
    // (One heartbeat period first, so the audit horizon covers the newest
    // write — the same §4.2.1 freshness granularity as everywhere else.)
    clock.advance(Duration::days(1));
    AuditReport report = Auditor::audit_store(store, verifier);
    EXPECT_TRUE(report.clean()) << Auditor::summarize(report);
    EXPECT_EQ(report.scanned(), 3u);
  }
}

TEST(Restart, AdoptVrdtRefusedOnceInService) {
  Rig rig;
  rig.put("r", Duration::days(1));
  EXPECT_THROW(rig.store.adopt_vrdt(Vrdt{}), common::PreconditionError);
}

TEST(Restart, DedupIndexRebuiltOnAdopt) {
  StoreConfig dedup_cfg;
  dedup_cfg.dedup = true;
  Rig first({}, dedup_cfg);
  Bytes shared = to_bytes("shared across restart");
  first.put("other", Duration::days(30));
  Sn a = first.store.write(
      {.payloads = {shared}, .attr = first.attr(Duration::hours(1))});
  Sn b = first.store.write(
      {.payloads = {shared}, .attr = first.attr(Duration::days(30))});

  // "Restart" the host side onto the same firmware/records.
  Bytes vrdt_bytes = first.store.vrdt().serialize();
  WormStore store2(first.clock, first.firmware, first.records, dedup_cfg);
  store2.adopt_vrdt(Vrdt::deserialize(vrdt_bytes));

  // Dedup still recognizes the shared payload after the rebuild...
  Sn c = store2.write(
      {.payloads = {shared}, .attr = first.attr(Duration::days(30))});
  EXPECT_EQ(store2.counters().at("store.dedup_hits"), 1u);
  // ...and refcounts were reconstructed: the first reference expiring does
  // not shred the bytes the others still need.
  first.clock.advance(Duration::hours(2));
  auto res = store2.read(b);
  ASSERT_TRUE(res.is<ReadOk>());
  EXPECT_EQ(res.get<ReadOk>().payloads.at(0), shared);
  (void)a;
  (void)c;
}

}  // namespace
}  // namespace worm::core
