// DES/3DES tests: two independent classic known-answer vectors, plus the
// algebraic properties unique to real DES — the complementation property
// E_{~k}(~p) == ~E_k(p) (exercises the whole linear skeleton) and weak-key
// involution E_k(E_k(p)) == p (exercises the key schedule) — plus 3DES
// degeneration to single DES and CBC round trips.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "crypto/des.hpp"
#include "crypto/drbg.hpp"

namespace worm::crypto {
namespace {

using common::Bytes;
using common::hex_decode;
using common::hex_encode;

Des::Block block_from_hex(const std::string& hex) {
  Bytes b = hex_decode(hex);
  Des::Block out{};
  std::copy(b.begin(), b.end(), out.begin());
  return out;
}

std::string block_hex(const Des::Block& b) {
  return hex_encode(common::ByteView(b.data(), b.size()));
}

TEST(Des, ClassicKnownAnswerStallings) {
  // The worked example in Stallings' "Cryptography and Network Security".
  Des des(hex_decode("133457799bbcdff1"));
  EXPECT_EQ(block_hex(des.encrypt(block_from_hex("0123456789abcdef"))),
            "85e813540f0ab405");
}

TEST(Des, ClassicKnownAnswerVaseline) {
  // The famous 'Your lips are smoother than vaseline' DES teaching vector:
  // this key encrypts 8787878787878787 to all zeros.
  Des des(hex_decode("0e329232ea6d0d73"));
  EXPECT_EQ(block_hex(des.encrypt(block_from_hex("8787878787878787"))),
            "0000000000000000");
  EXPECT_EQ(block_hex(des.decrypt(block_from_hex("0000000000000000"))),
            "8787878787878787");
}

TEST(Des, DecryptInvertsEncrypt) {
  Drbg rng(0xde5);
  for (int i = 0; i < 50; ++i) {
    Des des(rng.bytes(8));
    Des::Block pt;
    rng.fill(pt.data(), pt.size());
    EXPECT_EQ(des.decrypt(des.encrypt(pt)), pt);
  }
}

TEST(Des, ComplementationProperty) {
  // E_{~k}(~p) == ~E_k(p) holds for genuine DES; almost any table slip in
  // IP/FP/E/P or the key schedule breaks it.
  Drbg rng(0xde6);
  for (int i = 0; i < 20; ++i) {
    Bytes key = rng.bytes(8);
    Des::Block pt;
    rng.fill(pt.data(), pt.size());

    Bytes nkey = key;
    for (auto& b : nkey) b = static_cast<std::uint8_t>(~b);
    Des::Block npt;
    for (std::size_t j = 0; j < 8; ++j) {
      npt[j] = static_cast<std::uint8_t>(~pt[j]);
    }

    Des::Block ct = Des(key).encrypt(pt);
    Des::Block nct = Des(nkey).encrypt(npt);
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_EQ(nct[j], static_cast<std::uint8_t>(~ct[j]));
    }
  }
}

TEST(Des, WeakKeyInvolution) {
  // For the four DES weak keys, encryption is an involution: all 16
  // subkeys coincide, so E_k(E_k(p)) == p. Validates PC1/PC2/rotations.
  for (const char* weak :
       {"0101010101010101", "fefefefefefefefe",
        "1f1f1f1f0e0e0e0e", "e0e0e0e0f1f1f1f1"}) {
    Des des(hex_decode(weak));
    Drbg rng(0xde7);
    Des::Block pt;
    rng.fill(pt.data(), pt.size());
    EXPECT_EQ(des.encrypt(des.encrypt(pt)), pt) << weak;
  }
}

TEST(Des, RejectsBadKeySize) {
  EXPECT_THROW(Des(Bytes(7, 0)), common::PreconditionError);
  EXPECT_THROW(Des(Bytes(9, 0)), common::PreconditionError);
}

TEST(TripleDes, DegeneratesToSingleDesWithRepeatedKey) {
  Drbg rng(0x3de);
  Bytes k = rng.bytes(8);
  Bytes k3;
  for (int i = 0; i < 3; ++i) common::append(k3, k);
  Des single(k);
  TripleDes triple(k3);
  Des::Block pt;
  rng.fill(pt.data(), pt.size());
  EXPECT_EQ(triple.encrypt(pt), single.encrypt(pt));
  EXPECT_EQ(triple.decrypt(single.encrypt(pt)), pt);
}

TEST(TripleDes, RoundTripWithIndependentKeys) {
  Drbg rng(0x3df);
  TripleDes tdes(rng.bytes(24));
  for (int i = 0; i < 20; ++i) {
    Des::Block pt;
    rng.fill(pt.data(), pt.size());
    EXPECT_EQ(tdes.decrypt(tdes.encrypt(pt)), pt);
  }
}

TEST(TripleDes, CbcRoundTripAndChaining) {
  Drbg rng(0x3e0);
  TripleDes tdes(rng.bytes(24));
  Bytes iv = rng.bytes(8);
  Bytes pt = rng.bytes(64);
  Bytes ct = tdes.encrypt_cbc(iv, pt);
  EXPECT_EQ(tdes.decrypt_cbc(iv, ct), pt);

  // Identical plaintext blocks must yield distinct ciphertext blocks.
  Bytes repeated(32, 0x41);
  Bytes ct2 = tdes.encrypt_cbc(iv, repeated);
  EXPECT_NE(Bytes(ct2.begin(), ct2.begin() + 8),
            Bytes(ct2.begin() + 8, ct2.begin() + 16));
}

TEST(TripleDes, CbcValidation) {
  Drbg rng(0x3e1);
  TripleDes tdes(rng.bytes(24));
  EXPECT_THROW(tdes.encrypt_cbc(Bytes(7, 0), Bytes(8, 0)),
               common::PreconditionError);
  EXPECT_THROW(tdes.encrypt_cbc(Bytes(8, 0), Bytes(9, 0)),
               common::PreconditionError);
  EXPECT_THROW(TripleDes(Bytes(23, 0)), common::PreconditionError);
}

}  // namespace
}  // namespace worm::crypto
