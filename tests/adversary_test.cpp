// Theorems 1 & 2 as executable tests (paper §5):
//   Theorem 1 — records committed to WORM storage cannot be altered or
//               removed undetected.
//   Theorem 2 — insiders with super-user powers cannot "hide" active records
//               by claiming they expired or were never stored.
// Every Mallory driver from src/adversary runs against the honest client
// verifier; all attacks must surface as kTampered/kStaleProof, never as a
// trustworthy verdict.
#include <gtest/gtest.h>

#include "adversary/mallory.hpp"
#include "worm_fixture.hpp"

namespace worm::adversary {
namespace {

using common::Duration;
using core::Outcome;
using core::ReadOk;
using core::ReadOutcome;
using core::Sn;
using core::Verdict;
using worm::testing::Rig;

// ---------------------------------------------------------------------------
// Theorem 1: no undetected alteration or removal
// ---------------------------------------------------------------------------

TEST(Theorem1, DataBlockTamperingIsDetected) {
  Rig rig;
  Sn sn = rig.put("the original truth", Duration::days(30));
  ASSERT_TRUE(tamper_record_data(rig.store, rig.disk, sn));
  Outcome out = rig.verifier.verify_read(sn, rig.store.read(sn));
  EXPECT_EQ(out.verdict, Verdict::kTampered) << out.detail;
}

TEST(Theorem1, SingleBitFlipIsDetected) {
  Rig rig;
  Sn sn = rig.put("precision matters", Duration::days(30));
  auto res = rig.store.read(sn);
  std::uint64_t block = res.get<ReadOk>().vrd.rdl.at(0).blocks.at(0);
  rig.disk.raw_block(block)[3] ^= 0x01;  // one bit, one byte
  EXPECT_EQ(rig.verifier.verify_read(sn, rig.store.read(sn)).verdict,
            Verdict::kTampered);
}

TEST(Theorem1, RetentionShorteningIsDetected) {
  // Mallory edits attr.retention in the VRDT so the record "expires" sooner.
  // The metasig covers attr, so the forgery cannot verify.
  Rig rig;
  Sn sn = rig.put("must live 30 days", Duration::days(30));
  ASSERT_TRUE(rewrite_retention(rig.store, sn, Duration::hours(1)));
  Outcome out = rig.verifier.verify_read(sn, rig.store.read(sn));
  EXPECT_EQ(out.verdict, Verdict::kTampered) << out.detail;
}

TEST(Theorem1, LitigationHoldStrippingIsDetected) {
  Rig rig;
  Sn sn = rig.put("under hold", Duration::days(1));
  rig.store.lit_hold({.sn = sn,
                      .lit_id = 7,
                      .hold_until = rig.clock.now() + Duration::days(30),
                      .cred_issued_at = rig.clock.now(),
                      .credential = rig.lit_credential(sn, 7, true)});
  // Mallory clears the hold flag directly in the VRDT.
  auto* e = core::InsiderHandle(rig.store).vrdt().mutable_entry(sn);
  e->vrd.attr.litigation_hold = false;
  EXPECT_EQ(rig.verifier.verify_read(sn, rig.store.read(sn)).verdict,
            Verdict::kTampered);
}

TEST(Theorem1, CrossWiredRecordDataIsDetected) {
  Rig rig;
  Sn a = rig.put("record A contents", Duration::days(30));
  Sn b = rig.put("record B contents", Duration::days(30));
  ASSERT_TRUE(cross_wire_records(rig.store, a, b));
  // A's datasig covers A's hash; B's bytes can never satisfy it.
  EXPECT_EQ(rig.verifier.verify_read(a, rig.store.read(a)).verdict,
            Verdict::kTampered);
  // B itself is untouched.
  EXPECT_EQ(rig.verifier.verify_read(b, rig.store.read(b)).verdict,
            Verdict::kAuthentic);
}

TEST(Theorem1, ForgedDeletionProofIsDetected) {
  Rig rig;
  crypto::Drbg rng(0xbadbad);
  Sn sn = rig.put("inconvenient record", Duration::days(30));
  ASSERT_TRUE(forge_deletion(rig.store, sn, rng));
  Outcome out = rig.verifier.verify_read(sn, rig.store.read(sn));
  EXPECT_EQ(out.verdict, Verdict::kTampered) << out.detail;
}

TEST(Theorem1, ReplayedForeignDeletionProofIsDetected) {
  // The donor's deletion proof is GENUINE — but it names the donor's SN, so
  // serving it for the victim fails the SN binding check.
  Rig rig;
  Sn donor = rig.put("legitimately expiring", Duration::hours(1));
  Sn victim = rig.put("rush-delete me", Duration::days(30));
  rig.clock.advance(Duration::hours(2));  // donor now properly deleted
  ASSERT_TRUE(replay_foreign_deletion(rig.store, victim, donor));
  Outcome out = rig.verifier.verify_read(victim, rig.store.read(victim));
  EXPECT_EQ(out.verdict, Verdict::kTampered) << out.detail;
}

TEST(Theorem1, MetasigSwapBetweenRecordsIsDetected) {
  // Even two records with identical attrs can't exchange signatures: the SN
  // inside the envelope pins each signature to its record.
  Rig rig;
  Sn a = rig.put("same body", Duration::days(30));
  Sn b = rig.put("same body", Duration::days(30));
  auto* ea = core::InsiderHandle(rig.store).vrdt().mutable_entry(a);
  auto* eb = core::InsiderHandle(rig.store).vrdt().mutable_entry(b);
  std::swap(ea->vrd.metasig, eb->vrd.metasig);
  EXPECT_EQ(rig.verifier.verify_read(a, rig.store.read(a)).verdict,
            Verdict::kTampered);
  EXPECT_EQ(rig.verifier.verify_read(b, rig.store.read(b)).verdict,
            Verdict::kTampered);
}

TEST(Theorem1, SplicedDeletedWindowIsDetected) {
  // Build two genuine windows, then splice first.lo with second.hi to claim
  // everything in between (including a live record) was deleted. The shared
  // random window id inside the signed bounds defeats this (§4.2.1).
  Rig rig;
  rig.put("keep-0", Duration::days(30));            // sn 1
  for (int i = 0; i < 3; ++i) rig.put("w1", Duration::hours(1));  // 2..4
  Sn live = rig.put("LIVE TARGET", Duration::days(30));           // 5
  for (int i = 0; i < 3; ++i) rig.put("w2", Duration::hours(2));  // 6..8
  rig.put("keep-9", Duration::days(30));                          // 9
  rig.clock.advance(Duration::hours(3));
  while (rig.store.pump_idle()) {
  }
  ASSERT_EQ(rig.store.vrdt().windows().size(), 2u);

  core::DeletedWindow forged = splice_windows(rig.store.vrdt().windows()[0],
                                              rig.store.vrdt().windows()[1]);
  install_spliced_window(rig.store, forged);

  ReadOutcome res = rig.store.read(live);
  ASSERT_TRUE(res.is<core::ReadInDeletedWindow>());
  Outcome out = rig.verifier.verify_read(live, res);
  EXPECT_EQ(out.verdict, Verdict::kTampered) << out.detail;
}

TEST(Theorem1, GenuineWindowStillVerifiesAfterSpliceAttempt) {
  // Sanity inverse of the above: an unspliced certified window is accepted.
  Rig rig;
  rig.put("anchor", Duration::days(30));
  for (int i = 0; i < 4; ++i) rig.put("w", Duration::hours(1));
  rig.clock.advance(Duration::hours(2));
  while (rig.store.pump_idle()) {
  }
  ASSERT_EQ(rig.store.vrdt().windows().size(), 1u);
  Sn inside = 3;
  EXPECT_EQ(rig.verifier.verify_read(inside, rig.store.read(inside)).verdict,
            Verdict::kDeletedVerified);
}

// ---------------------------------------------------------------------------
// Theorem 2: active records cannot be hidden
// ---------------------------------------------------------------------------

TEST(Theorem2, HiddenRecordYieldsNoAcceptableAnswer) {
  Rig rig;
  Sn sn = rig.put("subpoenaed record", Duration::days(30));
  // §4.2.1 (ii): the heartbeat mechanism protects records older than one
  // refresh period. Let one heartbeat cover the new record, then attack.
  rig.clock.advance(Duration::minutes(3));
  ASSERT_TRUE(hide_record(rig.store, sn));
  // The store has no entry, no window, no below-base claim; its only honest
  // answer is "no proof", which the client treats as tampering.
  ReadOutcome res = rig.store.read(sn);
  Outcome out = rig.verifier.verify_read(sn, res);
  EXPECT_EQ(out.verdict, Verdict::kTampered) << out.detail;
  EXPECT_FALSE(out.trustworthy());
}

TEST(Theorem2, HeartbeatWindowIsTheOnlyHidingSlack) {
  // Documented protocol boundary: within ONE heartbeat period of a write,
  // a pre-write stamp is still "fresh" and can deny the newest records —
  // exactly the few-minutes granularity §4.2.1 (ii) accepts. After the next
  // refresh (tested above) the attack dies. This test pins the boundary so
  // a regression that silently widens it gets caught.
  Rig rig;
  core::SignedSnCurrent pre_write = rig.store.latest_heartbeat();
  Sn sn = rig.put("seconds old", Duration::days(30));
  Outcome out =
      rig.verifier.verify_read(sn, stale_not_allocated_answer(pre_write));
  EXPECT_EQ(out.verdict, Verdict::kNeverExistedVerified);  // the known window
  rig.clock.advance(Duration::minutes(6));  // > sn_current_max_age
  out = rig.verifier.verify_read(sn, stale_not_allocated_answer(pre_write));
  EXPECT_EQ(out.verdict, Verdict::kStaleProof);  // window closed
}

TEST(Theorem2, StaleHeartbeatCannotHideRecentRecords) {
  // Mallory captures S_s(SN_current) before the incriminating write, then
  // replays it to claim the record never existed. Freshness (§4.2.1 (ii))
  // defeats this.
  Rig rig;
  core::SignedSnCurrent captured = rig.store.latest_heartbeat();
  Sn sn = rig.put("written after capture", Duration::days(30));
  rig.clock.advance(Duration::minutes(10));  // stamp now stale

  ReadOutcome forged = stale_not_allocated_answer(captured);
  Outcome out = rig.verifier.verify_read(sn, forged);
  EXPECT_EQ(out.verdict, Verdict::kStaleProof) << out.detail;
  EXPECT_FALSE(out.trustworthy());
}

TEST(Theorem2, FreshHeartbeatCannotDenyAllocatedSn) {
  // Even a FRESH heartbeat names sn_current >= sn, so the "never allocated"
  // claim is self-contradictory for an allocated SN.
  Rig rig;
  Sn sn = rig.put("allocated", Duration::days(30));
  rig.clock.advance(Duration::minutes(3));  // heartbeat now names sn_current >= sn
  ReadOutcome forged = stale_not_allocated_answer(rig.store.latest_heartbeat());
  Outcome out = rig.verifier.verify_read(sn, forged);
  EXPECT_EQ(out.verdict, Verdict::kTampered) << out.detail;
}

TEST(Theorem2, VrdtRollbackIsDetected) {
  // Full VRDT rollback to a pre-write snapshot. The rolled-back table knows
  // nothing of the new SN; whatever the store answers, the client refuses.
  Rig rig;
  core::Vrdt snapshot = snapshot_vrdt(rig.store);
  Sn sn = rig.put("history to erase", Duration::days(30));
  rig.clock.advance(Duration::minutes(3));  // one heartbeat covers the write
  rollback_vrdt(rig.store, std::move(snapshot));

  ReadOutcome res = rig.store.read(sn);
  Outcome out = rig.verifier.verify_read(sn, res);
  EXPECT_FALSE(out.trustworthy()) << to_string(out.verdict) << ": "
                                  << out.detail;
}

TEST(Theorem2, ExpiredBaseProofCannotJustifyDeletion) {
  // An old S_s(SN_base) replayed after its validity is refused, so Mallory
  // cannot pretend a live high SN sits below some ancient base.
  Rig rig(worm::testing::slow_timers_config());
  for (int i = 0; i < 3; ++i) rig.put("r", Duration::hours(1));
  Sn live = rig.put("live", Duration::days(365));
  rig.clock.advance(Duration::hours(2));
  while (rig.store.pump_idle()) {
  }
  core::SignedSnBase base = rig.firmware.sign_base();
  rig.clock.advance(Duration::days(3));  // base proof now expired

  core::ReadOutcome forged = core::ReadBelowBase{base};
  Outcome out = rig.verifier.verify_read(live, forged);
  EXPECT_FALSE(out.trustworthy());
}

TEST(Theorem2, BaseProofCannotCoverSnAboveIt) {
  Rig rig;
  for (int i = 0; i < 3; ++i) rig.put("r", Duration::hours(1));
  Sn live = rig.put("live", Duration::days(365));
  rig.clock.advance(Duration::hours(2));
  while (rig.store.pump_idle()) {
  }
  ASSERT_EQ(rig.firmware.sn_base(), 4u);
  core::ReadOutcome forged = core::ReadBelowBase{rig.firmware.sign_base()};
  // live == 4 >= base == 4: claim is structurally wrong.
  Outcome out = rig.verifier.verify_read(live, forged);
  EXPECT_EQ(out.verdict, Verdict::kTampered) << out.detail;
}

// ---------------------------------------------------------------------------
// What the threat model deliberately allows (§2.1): remembering
// ---------------------------------------------------------------------------

TEST(ThreatModel, RememberingDeletedDataIsOutOfScopeByDesign) {
  // Mallory copies record + VRD before expiry and restores them afterwards.
  // The restored record verifies as authentic: WORM prevents REWRITING
  // history, not REMEMBERING it — the paper's §2.1 makes this explicit.
  Rig rig;
  Sn sn = rig.put("she keeps a copy", Duration::hours(1));
  auto res = rig.store.read(sn);
  auto ok = res.get<ReadOk>();
  core::Vrdt::Entry saved = *rig.store.vrdt().find(sn);

  rig.clock.advance(Duration::hours(2));  // record deleted + shredded
  ASSERT_TRUE(rig.store.read(sn).is<core::ReadDeleted>());

  // Restore from her private copies.
  core::InsiderHandle(rig.store).vrdt().force_put(sn, saved);
  for (std::size_t i = 0; i < ok.vrd.rdl.size(); ++i) {
    // Rewrite payload bytes back onto the (reallocated) blocks.
    const auto& rd = ok.vrd.rdl[i];
    const auto& payload = ok.payloads[i];
    common::Bytes block(rig.disk.block_size(), 0);
    std::copy(payload.begin(), payload.end(), block.begin());
    rig.disk.raw_block(rd.blocks[0]) = block;
  }
  EXPECT_EQ(rig.verifier.verify_read(sn, rig.store.read(sn)).verdict,
            Verdict::kAuthentic);
}

TEST(ThreatModel, RushedRemovalBeforeRetentionIsImpossibleHonestly) {
  // There is no store API that deletes early, and the SCPU only signs
  // deletion proofs when the VEXP says retention lapsed. The best Mallory
  // can do is the forged/replayed proofs already shown to fail.
  Rig rig;
  Sn sn = rig.put("must be retained", Duration::days(30));
  rig.clock.advance(Duration::days(1));
  EXPECT_EQ(rig.firmware.counters().deletions, 0u);
  EXPECT_EQ(rig.verifier.verify_read(sn, rig.store.read(sn)).verdict,
            Verdict::kAuthentic);
}

}  // namespace
}  // namespace worm::adversary
