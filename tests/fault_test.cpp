// FaultInjector semantics (determinism, budgets, scheduling, time windows)
// and the storage-layer fault points: transient device errors absorbed by
// the record-store retry budget, bus glitches vs medium damage, torn writes
// that fail without materializing anything, and journal append faults.
#include <gtest/gtest.h>

#include "common/fault.hpp"
#include "fault_fixture.hpp"

namespace worm::core {
namespace {

using common::Duration;
using common::FaultInjector;
using common::FaultKind;
using common::FaultSpec;
using worm::testing::CrashRig;

// ---------------------------------------------------------------------------
// FaultInjector semantics
// ---------------------------------------------------------------------------

TEST(FaultInjector, SameSeedSameDecisionStream) {
  FaultInjector a(42);
  FaultInjector b(42);
  FaultSpec spec{.kind = FaultKind::kTransient, .probability = 0.3};
  a.arm("site", spec);
  b.arm("site", spec);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.evaluate_site("site"), b.evaluate_site("site")) << "eval " << i;
  }
  EXPECT_EQ(a.injected_total(), b.injected_total());
  EXPECT_GT(a.injected_total(), 0u);
  EXPECT_LT(a.injected_total(), 200u);
}

TEST(FaultInjector, CertainAndImpossibleProbabilities) {
  FaultInjector inj(7);
  inj.arm("always", {.kind = FaultKind::kDrop, .probability = 1.0});
  inj.arm("never", {.kind = FaultKind::kDrop, .probability = 0.0});
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(inj.evaluate_site("always"), FaultKind::kDrop);
    EXPECT_EQ(inj.evaluate_site("never"), FaultKind::kNone);
  }
  EXPECT_EQ(inj.site_stats("always").fires, 50u);
  EXPECT_EQ(inj.site_stats("never").fires, 0u);
  EXPECT_EQ(inj.site_stats("never").evaluations, 50u);
}

TEST(FaultInjector, MaxFiresBoundsTheBudget) {
  FaultInjector inj(7);
  inj.arm("site",
          {.kind = FaultKind::kTransient, .probability = 1.0, .max_fires = 3});
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (inj.evaluate_site("site") != FaultKind::kNone) ++fired;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(inj.injected_total(), 3u);
}

TEST(FaultInjector, ScheduledOneShotFiresOnExactlyTheNthEvaluation) {
  FaultInjector inj(9);
  inj.schedule("site", FaultKind::kTorn, 3);
  EXPECT_EQ(inj.evaluate_site("site"), FaultKind::kNone);
  EXPECT_EQ(inj.evaluate_site("site"), FaultKind::kNone);
  EXPECT_EQ(inj.evaluate_site("site"), FaultKind::kTorn);
  EXPECT_EQ(inj.evaluate_site("site"), FaultKind::kNone);
}

TEST(FaultInjector, ScheduleCountsFromSchedulingTime) {
  FaultInjector inj(9);
  (void)inj.evaluate_site("site");
  (void)inj.evaluate_site("site");
  inj.schedule("site", FaultKind::kDrop, 1);  // the NEXT evaluation
  EXPECT_EQ(inj.evaluate_site("site"), FaultKind::kDrop);
}

TEST(FaultInjector, TimeWindowGatesArmedSpecs) {
  common::SimClock clock;
  FaultInjector inj(3, &clock);
  FaultSpec spec{.kind = FaultKind::kTransient,
                 .probability = 1.0,
                 .not_before = clock.now() + Duration::hours(1),
                 .not_after = clock.now() + Duration::hours(2)};
  inj.arm("site", spec);
  EXPECT_EQ(inj.evaluate_site("site"), FaultKind::kNone);  // too early
  clock.advance(Duration::minutes(90));
  EXPECT_EQ(inj.evaluate_site("site"), FaultKind::kTransient);  // in window
  clock.advance(Duration::hours(1));
  EXPECT_EQ(inj.evaluate_site("site"), FaultKind::kNone);  // too late
}

TEST(FaultInjector, DisarmSilencesOneSiteDisarmAllEverything) {
  FaultInjector inj(3);
  inj.arm("a", {.kind = FaultKind::kDrop});
  inj.arm("b", {.kind = FaultKind::kDrop});
  inj.disarm("a");
  EXPECT_EQ(inj.evaluate_site("a"), FaultKind::kNone);
  EXPECT_EQ(inj.evaluate_site("b"), FaultKind::kDrop);
  inj.schedule("b", FaultKind::kTorn, 1);
  inj.disarm_all();
  EXPECT_EQ(inj.evaluate_site("b"), FaultKind::kNone);
}

TEST(FaultInjector, ShapeStaysInBound) {
  FaultInjector inj(11);
  for (int i = 0; i < 100; ++i) EXPECT_LT(inj.shape(13), 13u);
  EXPECT_EQ(inj.shape(1), 0u);
}

TEST(FaultInjector, NullInjectorFaultPointIsQuiet) {
  FaultInjector* none = nullptr;
  EXPECT_EQ(WORM_FAULT_POINT(none, "any.site"), FaultKind::kNone);
}

// ---------------------------------------------------------------------------
// Storage fault points through the full store
// ---------------------------------------------------------------------------

TEST(StorageFaults, TransientReadAbsorbedByRetryBudget) {
  CrashRig rig("");
  Sn sn = rig.put("fragile", Duration::days(1));
  rig.fault.schedule("device.read", FaultKind::kTransient, 1);
  ReadOutcome res = rig.store->read(sn);
  auto* ok = res.get_if<ReadOk>();
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(common::to_string(ok->payloads.at(0)), "fragile");
  EXPECT_GT(rig.store->counters().at("storage.read_retries"), 0u);
  EXPECT_GT(rig.store->counters().at("fault.injected"), 0u);
}

TEST(StorageFaults, ReadBusGlitchRetriedViaChecksum) {
  // A bit flip on the in-flight copy fails the descriptor checksum; the
  // retry re-reads the (intact) stored block and serves clean bytes. The
  // payload fills its block so the flip is guaranteed to land on covered
  // bytes, not slack.
  CrashRig rig("");
  std::string big(4096, 'g');
  Sn sn = rig.put(big, Duration::days(1));
  rig.fault.schedule("device.read", FaultKind::kBitFlip, 1);
  ReadOutcome res = rig.store->read(sn);
  auto* ok = res.get_if<ReadOk>();
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(common::to_string(ok->payloads.at(0)), big);
  EXPECT_EQ(rig.verifier().verify_read(sn, res).verdict, Verdict::kAuthentic);
  EXPECT_GT(rig.records.read_retries(), 0u);
}

TEST(StorageFaults, PersistentReadFaultBecomesReadUnavailable) {
  CrashRig rig("");
  Sn sn = rig.put("unreachable", Duration::days(1));
  rig.fault.arm("device.read", {.kind = FaultKind::kTransient});
  ReadOutcome res = rig.store->read(sn);
  auto* gone = res.get_if<ReadUnavailable>();
  ASSERT_NE(gone, nullptr) << to_string(res.status());
  EXPECT_TRUE(gone->retryable);
  Outcome out = rig.verifier().verify_read(sn, res);
  EXPECT_EQ(out.verdict, Verdict::kUnavailable) << out.detail;
  EXPECT_EQ(rig.store->counters().at("store.reads_unavailable"), 1u);

  // The outage is transient by definition: disarm and the record is back.
  rig.fault.disarm("device.read");
  EXPECT_EQ(rig.verifier().verify_read(sn, rig.store->read(sn)).verdict,
            Verdict::kAuthentic);
}

TEST(StorageFaults, MediumDamageStillReachesTheClientAsTampering) {
  // A write-side bit flip corrupts the stored block itself. The store serves
  // the damaged bytes (checksum mismatch outlives the retry budget) and the
  // client's datasig check convicts — faults must never mask tampering.
  CrashRig rig("");
  rig.fault.schedule("device.write", FaultKind::kBitFlip, 1);
  Sn sn = rig.put(std::string(4096, 'd'), Duration::days(1));
  ReadOutcome res = rig.store->read(sn);
  ASSERT_TRUE(res.is<ReadOk>()) << to_string(res.status());
  EXPECT_EQ(rig.verifier().verify_read(sn, res).verdict, Verdict::kTampered);
}

TEST(StorageFaults, TornWriteFailsWithoutMaterializingTheRecord) {
  CrashRig rig("");
  Sn before = rig.firmware.sn_current();
  rig.fault.schedule("device.write", FaultKind::kTorn, 1);
  EXPECT_THROW((void)rig.put("torn", Duration::days(1)),
               common::TransientStorageError);
  // Nothing crossed the mailbox: no serial number was issued.
  EXPECT_EQ(rig.firmware.sn_current(), before);
  // The retry (new blocks, fresh descriptor) succeeds.
  Sn sn = rig.put("torn retry", Duration::days(1));
  EXPECT_EQ(rig.verifier().verify_read(sn, rig.store->read(sn)).verdict,
            Verdict::kAuthentic);
}

TEST(StorageFaults, RecordStoreTransientWriteFaultFailsCleanly) {
  CrashRig rig("");
  rig.fault.schedule("records.write", FaultKind::kTransient, 1);
  Sn before = rig.firmware.sn_current();
  EXPECT_THROW((void)rig.put("refused", Duration::days(1)),
               common::TransientStorageError);
  EXPECT_EQ(rig.firmware.sn_current(), before);
}

TEST(StorageFaults, JournalAppendFaultFailsTheWriteBeforeTheCrossing) {
  CrashRig rig("journal_append_fault.wal");
  Sn before = rig.firmware.sn_current();
  rig.fault.schedule("journal.append", FaultKind::kTransient, 1);
  EXPECT_THROW((void)rig.put("unjournaled", Duration::days(1)),
               common::TransientStorageError);
  // The intent never reached the journal, so the command never crossed.
  EXPECT_EQ(rig.firmware.sn_current(), before);
  Sn sn = rig.put("journaled retry", Duration::days(1));
  EXPECT_EQ(rig.verifier().verify_read(sn, rig.store->read(sn)).verdict,
            Verdict::kAuthentic);
}

}  // namespace
}  // namespace worm::core
