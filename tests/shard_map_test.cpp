// ShardMap: the deterministic SN partitioner behind the sharded deployment.
// Edge cases the cluster depends on: range boundaries (off-by-one here is a
// silent misroute), empty shards, the single-shard degenerate map, layout
// validation, the resolve/to_global round trip, and the strict wire decode
// that kShardMap payloads go through.
#include <gtest/gtest.h>

#include "cluster/shard_map.hpp"
#include "common/error.hpp"

namespace worm::cluster {
namespace {

TEST(ShardMap, UniformLayout) {
  ShardMap map = ShardMap::uniform(4, 100);
  EXPECT_EQ(map.version(), 1u);
  ASSERT_EQ(map.shard_count(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(map.ranges()[i].lo, 1u + i * 100);
    EXPECT_EQ(map.ranges()[i].hi, 1u + (i + 1) * 100);
    EXPECT_EQ(map.ranges()[i].shard, static_cast<ShardId>(i));
  }
  EXPECT_THROW((void)ShardMap::uniform(0, 100), common::PreconditionError);
  EXPECT_THROW((void)ShardMap::uniform(4, 0), common::PreconditionError);
}

TEST(ShardMap, ResolvesRangeBoundariesExactly) {
  ShardMap map = ShardMap::uniform(4, 100);

  // First SN of the space, last SN of a shard, first SN of the next shard.
  Resolved r = map.resolve(1).value();
  EXPECT_EQ(r.shard_id, 0u);
  EXPECT_EQ(r.local_sn, 1u);
  EXPECT_EQ(r.version, 1u);

  r = map.resolve(100).value();  // hi is exclusive: 100 still belongs to 0
  EXPECT_EQ(r.shard_id, 0u);
  EXPECT_EQ(r.local_sn, 100u);

  r = map.resolve(101).value();  // first SN past the boundary moves shards
  EXPECT_EQ(r.shard_id, 1u);
  EXPECT_EQ(r.local_sn, 1u);

  r = map.resolve(400).value();  // very last owned SN
  EXPECT_EQ(r.shard_id, 3u);
  EXPECT_EQ(r.local_sn, 100u);

  // SN 0 is kInvalidSn and SN 401 is past every range: both unowned.
  RouteResult miss = map.resolve(401);
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.error().kind, RouteErrorKind::kOutOfRange);
  EXPECT_EQ(map.resolve(0).error().kind, RouteErrorKind::kOutOfRange);
}

TEST(ShardMap, EmptyMapAnswersEmptyMapError) {
  ShardMap map;
  EXPECT_EQ(map.version(), 0u);
  EXPECT_EQ(map.shard_count(), 0u);
  RouteResult r = map.resolve(1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, RouteErrorKind::kEmptyMap);
}

TEST(ShardMap, SingleShardDegeneratesToIdentity) {
  ShardMap map = ShardMap::uniform(1, 1000);
  for (core::Sn sn : {core::Sn{1}, core::Sn{17}, core::Sn{1000}}) {
    Resolved r = map.resolve(sn).value();
    EXPECT_EQ(r.shard_id, 0u);
    EXPECT_EQ(r.local_sn, sn);  // local == global in the degenerate map
    EXPECT_EQ(map.to_global(0, sn), sn);
  }
  EXPECT_FALSE(map.resolve(1001).ok());
}

TEST(ShardMap, EmptyShardOwnsNothing) {
  // Shard 1 is provisioned but owns no SNs: [11, 11).
  ShardMap map(1, {ShardRange{1, 11, 0}, ShardRange{11, 11, 1},
                   ShardRange{11, 21, 2}});
  ASSERT_EQ(map.shard_count(), 3u);

  EXPECT_EQ(map.resolve(10).value().shard_id, 0u);
  // SN 11 skips the empty shard and lands on shard 2.
  Resolved r = map.resolve(11).value();
  EXPECT_EQ(r.shard_id, 2u);
  EXPECT_EQ(r.local_sn, 1u);

  // An empty shard can never have acked a local SN.
  EXPECT_THROW((void)map.to_global(1, 1), common::PreconditionError);
}

TEST(ShardMap, RejectsMalformedLayouts) {
  // Overlap.
  EXPECT_THROW(ShardMap(1, {ShardRange{1, 11, 0}, ShardRange{10, 21, 1}}),
               common::PreconditionError);
  // Duplicate shard id across ranges.
  EXPECT_THROW(ShardMap(1, {ShardRange{1, 11, 0}, ShardRange{11, 21, 0}}),
               common::PreconditionError);
  // Ownership starts at SN 1 (0 is kInvalidSn).
  EXPECT_THROW(ShardMap(1, {ShardRange{0, 11, 0}}),
               common::PreconditionError);
  // Backwards range.
  EXPECT_THROW(ShardMap(1, {ShardRange{11, 10, 0}}),
               common::PreconditionError);
  // Gaps are fine: not every SN needs an owner yet.
  EXPECT_NO_THROW(ShardMap(1, {ShardRange{1, 11, 0}, ShardRange{21, 31, 1}}));
}

TEST(ShardMap, ToGlobalBoundsChecked) {
  ShardMap map = ShardMap::uniform(2, 50);
  EXPECT_EQ(map.to_global(1, 1), 51u);
  EXPECT_EQ(map.to_global(1, 50), 100u);
  EXPECT_THROW((void)map.to_global(1, 0), common::PreconditionError);
  EXPECT_THROW((void)map.to_global(1, 51), common::PreconditionError);
  EXPECT_THROW((void)map.to_global(99, 1), common::PreconditionError);
}

TEST(ShardMap, ResolveToGlobalRoundTrip) {
  ShardMap map(7, {ShardRange{1, 100, 2}, ShardRange{100, 105, 0},
                   ShardRange{105, 400, 5}});
  for (core::Sn sn = 1; sn < 400; sn += 13) {
    Resolved r = map.resolve(sn).value();
    EXPECT_EQ(r.version, 7u);
    EXPECT_EQ(map.to_global(r.shard_id, r.local_sn), sn) << "sn " << sn;
  }
}

TEST(ShardMap, SerializeRoundTrip) {
  ShardMap map(42, {ShardRange{1, 1000, 3}, ShardRange{1000, 1000, 1},
                    ShardRange{1000, 5000, 0}});
  common::Bytes wire = map.serialize();
  ShardMap back = ShardMap::deserialize(common::ByteView(wire));
  EXPECT_EQ(back.version(), 42u);
  ASSERT_EQ(back.shard_count(), map.shard_count());
  for (std::size_t i = 0; i < map.shard_count(); ++i) {
    EXPECT_EQ(back.ranges()[i].lo, map.ranges()[i].lo);
    EXPECT_EQ(back.ranges()[i].hi, map.ranges()[i].hi);
    EXPECT_EQ(back.ranges()[i].shard, map.ranges()[i].shard);
  }
}

TEST(ShardMap, StrictDecodeRejectsHostileBytes) {
  common::Bytes wire = ShardMap::uniform(2, 100).serialize();

  // Trailing garbage: the kShardMap payload decoder is whole-buffer strict.
  common::Bytes padded = wire;
  padded.push_back(0x00);
  EXPECT_THROW((void)ShardMap::deserialize(common::ByteView(padded)),
               common::ParseError);

  // Truncation.
  common::Bytes cut(wire.begin(), wire.end() - 3);
  EXPECT_THROW((void)ShardMap::deserialize(common::ByteView(cut)),
               common::ParseError);

  // Structurally well-formed bytes encoding an invalid layout (overlap)
  // must fail as a PARSE error, not leak a PreconditionError.
  common::ByteWriter w;
  w.u32(1);  // version
  w.u32(2);  // two ranges
  w.u64(1); w.u64(20); w.u32(0);
  w.u64(10); w.u64(30); w.u32(1);  // overlaps the first
  common::Bytes evil = w.take();
  EXPECT_THROW((void)ShardMap::deserialize(common::ByteView(evil)),
               common::ParseError);
}

TEST(ShardMap, RouteResultContract) {
  ShardMap map = ShardMap::uniform(1, 10);
  RouteResult ok = map.resolve(5);
  EXPECT_TRUE(ok.ok());
  EXPECT_TRUE(static_cast<bool>(ok));
  EXPECT_THROW((void)ok.error(), common::PreconditionError);

  RouteResult err = map.resolve(11);
  EXPECT_FALSE(err.ok());
  EXPECT_THROW((void)err.value(), common::PreconditionError);
  EXPECT_FALSE(err.error().reason.empty());
}

}  // namespace
}  // namespace worm::cluster
