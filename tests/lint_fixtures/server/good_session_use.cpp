// lint fixture: the sanctioned shape for src/server/ code — every store
// touch goes through the connection's WormSession (worm/session.hpp), which
// carries the principal and the freshness watermark. Mentioning the store
// type in comments is fine (this rule reads code, not prose: WormStore).
#include "worm/session.hpp"

namespace worm::server {

core::Sn session_write(core::WormSession& session,
                       core::WriteRequest request) {
  // The session is the choke point; worm_store.hpp never appears here.
  return session.write(request);
}

core::ReadOutcome session_read(core::WormSession& session, core::Sn sn) {
  return session.read(sn);
}

}  // namespace worm::server
