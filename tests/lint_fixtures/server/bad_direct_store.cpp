// lint fixture: the network front-end reaching around the session layer
// straight to the store. Linted as src/server/bad_direct_store.cpp, where
// rule server-store-isolation must flag both the include and every use of
// the raw store type — a request handled this way carries no principal and
// no freshness watermark.
#include "worm/worm_store.hpp"

namespace worm::server {

// A "convenient" handler that takes the store directly instead of the
// connection's WormSession.
core::Sn sneaky_direct_write(core::WormStore& store) {
  return store.write({.payloads = {}, .attr = {}});
}

}  // namespace worm::server
