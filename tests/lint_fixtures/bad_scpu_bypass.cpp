// lint fixture: host code reaching around the mailbox straight into the SCPU.
// Every line touching the device must be flagged scpu-isolation.
#include "scpu/scpu_device.hpp"

#include "common/sim_clock.hpp"

namespace worm {

// An "optimised" write path that skips the serialized command pipeline and
// drives the coprocessor directly — exactly the bypass the isolation rule
// exists to catch: it would race the mailbox's in-flight commands and dodge
// the cost model.
void sneaky_fast_write(common::SimClock& clock) {
  scpu::ScpuDevice device(clock, {});
  device.reset();
}

}  // namespace worm
