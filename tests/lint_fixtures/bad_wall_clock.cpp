// lint fixture: wall-clock use inside src/. Must be flagged wall-clock.
#include <chrono>
#include <cstdint>

namespace worm {

// Stamping records with the host's real clock breaks determinism and lets
// test runs disagree with the SimClock the SCPU charges against.
std::int64_t current_unix_nanos() {
  auto now = std::chrono::system_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             now.time_since_epoch())
      .count();
}

}  // namespace worm
