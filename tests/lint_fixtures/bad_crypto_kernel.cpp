// lint fixture: raw crypto-kernel calls from outside src/crypto/. Every
// call below must be flagged crypto-isolation — host code reaching past the
// public Sha256/MontgomeryCtx API skips runtime backend dispatch and the
// device cost model.
#include "crypto/biguint.hpp"
#include "crypto/sha256.hpp"

namespace worm {

void hand_rolled_hash(crypto::Sha256& h, const std::uint8_t* block) {
  h.process_blocks(block, 1);
}

void pinned_backend() {
  crypto::Sha256::force_backend(crypto::Sha256Backend::kScalar);
}

void hand_rolled_mont(crypto::MontgomeryCtx& ctx, const std::uint32_t* a,
                      const std::uint32_t* b, std::uint32_t* out,
                      std::uint32_t* scratch) {
  ctx.mont_mul_into(a, b, out, scratch);
}

}  // namespace worm
