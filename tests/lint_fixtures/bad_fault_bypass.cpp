// lint fixture: direct evaluate_site() calls. Every call below must be
// flagged fault-bypass — bypassing WORM_FAULT_POINT hides the injection
// site from the greppable fault-surface inventory and skips the null check.
#include "common/fault.hpp"

namespace worm {

common::FaultKind probe(common::FaultInjector* fault) {
  if (fault == nullptr) return common::FaultKind::kNone;
  return fault->evaluate_site("storage.hidden_site");
}

common::FaultKind probe_ref(common::FaultInjector& fault) {
  return fault.evaluate_site("channel.hidden_site");
}

}  // namespace worm
