// lint fixture: blocking pipeline waits while holding state_mu_. The
// committer thread needs the store lock to retire admissions, so every wait
// below must be flagged blocking-under-state-mu — each is a deadlock the
// moment the committer is behind.
#include "common/annotations.hpp"
#include "worm/worm_store.hpp"

namespace worm {

struct BadStore {
  common::AnnotatedSharedMutex state_mu_;
  core::WormStore* store = nullptr;
  core::WritePipeline* pipeline_ = nullptr;

  core::Sn wait_under_exclusive(core::WriteTicket ticket) {
    common::ExclusiveLock lk(state_mu_);
    return ticket.get();  // blocks on the committer while owning its lock
  }

  void drain_under_shared() {
    common::SharedLock lk(state_mu_);
    store->drain_writes();  // same deadlock, reader side
  }

  void submit_under_lock(core::WritePipeline::Pending p) {
    common::ExclusiveLock lk(state_mu_);
    // Backpressure can block in submit; the committer frees space only
    // after taking state_mu_.
    (void)pipeline_->submit(std::move(p));
  }
};

}  // namespace worm
