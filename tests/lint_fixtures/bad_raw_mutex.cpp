// lint fixture: raw std synchronization primitives. Every declaration and
// guard below must be flagged raw-mutex — none of them are visible to
// thread-safety analysis.
#include <mutex>

namespace worm {

std::mutex g_table_mu;
int g_table_entries = 0;  // unguarded: the analysis can't see g_table_mu

void bump() {
  std::lock_guard<std::mutex> lk(g_table_mu);
  ++g_table_entries;
}

}  // namespace worm
