// lint fixture: the sanctioned shape for src/cluster/ code — the router
// holds one WormSession per shard and every store touch goes through it.
// Mentioning the store type in comments is fine (the rule reads code, not
// prose: WormStore).
#include "worm/session.hpp"

namespace worm::cluster {

core::Sn shard_session_write(core::WormSession& shard_session,
                             core::WriteRequest request) {
  // The session is the choke point; worm_store.hpp never appears here.
  return shard_session.write(request);
}

core::ReadOutcome shard_session_read(core::WormSession& shard_session,
                                     core::Sn local_sn) {
  return shard_session.read(local_sn);
}

}  // namespace worm::cluster
