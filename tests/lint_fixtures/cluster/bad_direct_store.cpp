// lint fixture: the cluster layer reaching around the session layer straight
// to a shard's store. Linted as src/cluster/bad_direct_store.cpp, where rule
// server-store-isolation must flag both the include and every use of the raw
// store type — a shard routed this way carries no principal and no freshness
// watermark, exactly the bypass the rule exists to stop in src/server/.
#include "worm/worm_store.hpp"

namespace worm::cluster {

// A "convenient" router that holds the shard's store directly instead of the
// WormSession its factory was supposed to mint.
core::Sn sneaky_shard_write(core::WormStore& shard_store) {
  return shard_store.write({.payloads = {}, .attr = {}});
}

}  // namespace worm::cluster
