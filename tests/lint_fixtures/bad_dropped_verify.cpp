// lint fixture: discarded verification verdict. Must be flagged
// dropped-result.
#include "crypto/rsa.hpp"

namespace worm {

void accept_record(const crypto::RsaPublicKey& pk, common::ByteView payload,
                   const common::Bytes& sig) {
  // The verdict is dropped on the floor: a forged signature sails through.
  crypto::rsa_verify(pk, payload, sig);
}

}  // namespace worm
