// lint fixture: patterns that look close to violations but are all
// legitimate. The lint must report this file clean — each section guards
// against a specific false-positive regression.
#include "common/annotations.hpp"
#include "common/fault.hpp"
#include "crypto/rsa.hpp"

namespace worm {

// The WORM_FAULT_POINT macro is the sanctioned fault-point vocabulary; the
// lexical scan must not mistake its use (or prose about evaluate_site) for
// a direct evaluate_site() bypass.
common::FaultKind sanctioned_fault_point(common::FaultInjector* fault) {
  return WORM_FAULT_POINT(fault, "fixture.site");
}

// Mentioning std::mutex or std::chrono in a comment is prose, not code.
// A string literal saying "std::mutex" or "ScpuDevice" is data, not code.
const char* kDoc = "prefer AnnotatedMutex over std::mutex; see ScpuDevice";

// The annotated wrappers and condition_variable_any are the sanctioned
// vocabulary.
common::AnnotatedMutex g_mu;
int g_count GUARDED_BY(g_mu) = 0;

// Blocking pipeline waits are fine once the state_mu_ guard's scope has
// closed, and a guard on some *other* mutex must not arm the rule. Prose
// like "never call ticket.get() under state_mu_" is prose.
common::AnnotatedSharedMutex state_mu_;
common::AnnotatedMutex other_mu_;

int wait_after_unlock(int (*blocking_get)()) {
  int mirror = 0;
  {
    common::ExclusiveLock lk(state_mu_);
    ++mirror;  // non-blocking work under the store lock is fine
  }
  // Guard scope closed: waiting on the pipeline is now legal.
  return blocking_get();
}

int wait_under_other_lock(int (*source)()) {
  common::MutexLock lk(other_mu_);
  struct Holder {
    int (*get)();
  } ticket{source};
  return ticket.get();  // .get( under a non-state_mu_ lock is not the rule
}

bool consume_verdict(const crypto::RsaPublicKey& pk, common::ByteView payload,
                     const common::Bytes& sig) {
  // Multi-line continuation: the call is the RHS of an assignment, so the
  // statement-boundary check must not read line 2 as a bare call.
  bool ok =
      crypto::rsa_verify(pk, payload, sig);
  // Explicit discard with justification is the sanctioned escape hatch.
  (void)crypto::rsa_verify(pk, payload, sig);  // warm-up only
  return ok;
}

}  // namespace worm

// Prose naming the crypto kernels is prose, and a string saying
// "process_blocks" or "force_backend" is data. Only a real call outside
// src/crypto/ trips crypto-isolation — see mont_mul_into docs.
const char* kKernelDoc = "hot loop dispatches via process_blocks(...)";
