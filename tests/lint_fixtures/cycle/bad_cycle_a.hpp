// lint fixture [include-cycle] — half of a two-header cycle: this header
// includes bad_cycle_b.hpp, which includes this one back. Lint both files
// together (--as-src a b) to close the edge set; the rule reports the
// strongly-connected component once.
#pragma once

#include "cycle/bad_cycle_b.hpp"

namespace fixture {

struct NodeA {
  NodeB* peer = nullptr;
};

}  // namespace fixture
