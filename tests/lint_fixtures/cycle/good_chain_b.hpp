// lint fixture [include-cycle, near-miss] — the tail of the chain: includes
// nothing project-relative, so the graph over {a, b} is a DAG.
#pragma once

namespace fixture {

struct ChainB {
  int value = 0;
};

}  // namespace fixture
