// lint fixture [include-cycle, near-miss] — a linear include chain plus a
// forward declaration of the would-be back-edge type. This is the shape the
// rule pushes cycles toward; it must produce zero findings. A comment naming
// #include "cycle/good_chain_a.hpp" must not count as an edge either.
#pragma once

#include "cycle/good_chain_b.hpp"

namespace fixture {

struct ChainA {
  ChainB down;        // real edge: a -> b, never back
  struct ChainC* up;  // back-reference via forward declaration, not include
};

}  // namespace fixture
