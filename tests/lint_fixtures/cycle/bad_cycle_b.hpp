// lint fixture [include-cycle] — the other half: includes bad_cycle_a.hpp,
// closing the loop. A forward declaration of NodeA is what this header
// should have used.
#pragma once

#include "cycle/bad_cycle_a.hpp"

namespace fixture {

struct NodeB {
  NodeA* peer = nullptr;
};

}  // namespace fixture
