// Wire-protocol robustness, mirroring commands_fuzz_test for the network
// frames: every opcode round-trips, every strict truncation raises
// ParseError, deterministic bit/byte mutations never escape as anything but
// ParseError, and the status/opcode code spaces are exactly the frozen sets.
#include <gtest/gtest.h>

#include <vector>

#include "crypto/drbg.hpp"
#include "server/protocol.hpp"
#include "worm/status.hpp"

namespace worm::server {
namespace {

using common::ByteReader;
using common::Bytes;
using common::ParseError;

Request sample_request(MsgOp op) {
  Request req;
  req.op = op;
  req.rid = 0x1234'5678'9abc'def0ull;
  switch (op) {
    case MsgOp::kHello:
      req.version = kProtocolVersion;
      req.principal = "auditor@example";
      req.token = Bytes(32, 0xa7);
      break;
    case MsgOp::kWrite:
      req.route_version = 3;  // v3 routing header rides every routed frame
      req.route_shard = 1;
      req.write.payloads = {common::to_bytes("record one"),
                            common::to_bytes("record two")};
      req.write.attr.retention = common::Duration::days(30);
      req.write.attr.regulation_policy = 17;
      req.write.mode = core::WitnessMode::kDeferred;
      req.expected_sn = 44;  // v4 sequencing condition
      break;
    case MsgOp::kRead:
      req.route_version = 3;
      req.route_shard = 2;
      req.sn = 42;
      break;
    case MsgOp::kLitHold:
    case MsgOp::kLitRelease:
      req.lit.sn = 7;
      req.lit.lit_id = 99;
      req.lit.hold_until = common::SimTime{123456789};
      req.lit.cred_issued_at = common::SimTime{1000};
      req.lit.credential = Bytes(64, 0x3c);
      break;
    case MsgOp::kPing:
    case MsgOp::kShardMap:
      break;
  }
  return req;
}

const std::vector<MsgOp> kAllOps = {MsgOp::kHello,      MsgOp::kWrite,
                                    MsgOp::kRead,       MsgOp::kLitHold,
                                    MsgOp::kLitRelease, MsgOp::kPing,
                                    MsgOp::kShardMap};

TEST(WireFuzz, RequestRoundTripEveryOpcode) {
  for (MsgOp op : kAllOps) {
    Request req = sample_request(op);
    Request back = decode_request(encode_request(req));
    EXPECT_EQ(back.op, req.op) << to_string(op);
    EXPECT_EQ(back.rid, req.rid);
    switch (op) {
      case MsgOp::kHello:
        EXPECT_EQ(back.version, req.version);
        EXPECT_EQ(back.principal, req.principal);
        EXPECT_EQ(back.token, req.token);
        break;
      case MsgOp::kWrite:
        EXPECT_EQ(back.route_version, req.route_version);
        EXPECT_EQ(back.route_shard, req.route_shard);
        EXPECT_EQ(back.write.payloads, req.write.payloads);
        EXPECT_EQ(back.write.attr, req.write.attr);
        EXPECT_EQ(back.write.mode, req.write.mode);
        EXPECT_EQ(back.expected_sn, req.expected_sn);
        break;
      case MsgOp::kRead:
        EXPECT_EQ(back.route_version, req.route_version);
        EXPECT_EQ(back.route_shard, req.route_shard);
        EXPECT_EQ(back.sn, req.sn);
        break;
      case MsgOp::kLitHold:
      case MsgOp::kLitRelease:
        EXPECT_EQ(back.lit.sn, req.lit.sn);
        EXPECT_EQ(back.lit.lit_id, req.lit.lit_id);
        EXPECT_EQ(back.lit.hold_until.ns, req.lit.hold_until.ns);
        EXPECT_EQ(back.lit.cred_issued_at.ns, req.lit.cred_issued_at.ns);
        EXPECT_EQ(back.lit.credential, req.lit.credential);
        break;
      case MsgOp::kPing:
      case MsgOp::kShardMap:
        break;
    }
  }
}

std::vector<Response> sample_responses() {
  std::vector<Response> out;

  Response read_ok;
  read_ok.op = MsgOp::kRead;
  read_ok.rid = 1;
  read_ok.status = core::WireStatus::kOk;
  core::ReadOk ok;
  ok.vrd.sn = 42;
  ok.vrd.data_hash = Bytes(32, 0x11);
  ok.payloads = {common::to_bytes("payload")};
  read_ok.outcome = core::ReadOutcome(std::move(ok));
  out.push_back(std::move(read_ok));

  Response read_gone;
  read_gone.op = MsgOp::kRead;
  read_gone.rid = 2;
  read_gone.status = core::WireStatus::kNotAllocated;
  core::SignedSnCurrent cur;
  cur.sn_current = 41;
  cur.stamped_at = common::SimTime{5555};
  cur.sig = Bytes(128, 0x2d);
  read_gone.attestation = cur;
  read_gone.outcome = core::ReadOutcome(core::ReadNotAllocated{cur});
  out.push_back(std::move(read_gone));

  Response write_ok;
  write_ok.op = MsgOp::kWrite;
  write_ok.rid = 3;
  write_ok.status = core::WireStatus::kOk;
  write_ok.sn = 43;
  out.push_back(std::move(write_ok));

  Response mismatch;  // v4: the failed condition's counter-offer rides back
  mismatch.op = MsgOp::kWrite;
  mismatch.rid = 9;
  mismatch.status = core::WireStatus::kSnMismatch;
  mismatch.sn = 44;
  mismatch.message = "expected SN 43 but this replica assigns 44 next";
  out.push_back(std::move(mismatch));

  Response busy;
  busy.op = MsgOp::kWrite;
  busy.rid = 4;
  busy.status = core::WireStatus::kBusy;
  busy.message = "write pipeline at capacity";
  out.push_back(std::move(busy));

  Response err;
  err.op = MsgOp::kLitHold;
  err.rid = 5;
  err.status = core::WireStatus::kPreconditionError;
  err.message = "bad credential";
  out.push_back(std::move(err));

  Response pong;
  pong.op = MsgOp::kPing;
  pong.rid = 6;
  pong.status = core::WireStatus::kOk;
  out.push_back(std::move(pong));

  Response epoch_pong;  // both attestation-slot bits set (protocol v2)
  epoch_pong.op = MsgOp::kPing;
  epoch_pong.rid = 7;
  epoch_pong.status = core::WireStatus::kOk;
  epoch_pong.attestation = cur;
  core::EpochCert cert;
  cert.epoch = 9;
  cert.sn_current = 41;
  cert.stamped_at = common::SimTime{5555};
  cert.sig = Bytes(128, 0x3e);
  epoch_pong.epoch_cert = cert;
  out.push_back(std::move(epoch_pong));

  Response shard_map;  // v3: cluster membership answer, opaque map blob
  shard_map.op = MsgOp::kShardMap;
  shard_map.rid = 8;
  shard_map.status = core::WireStatus::kOk;
  shard_map.shard_id = 2;
  shard_map.shard_map = Bytes(48, 0x5d);
  out.push_back(std::move(shard_map));

  return out;
}

TEST(WireFuzz, ResponseRoundTrip) {
  for (const Response& resp : sample_responses()) {
    Response back = decode_response(encode_response(resp));
    EXPECT_EQ(back.op, resp.op);
    EXPECT_EQ(back.rid, resp.rid);
    EXPECT_EQ(back.status, resp.status);
    EXPECT_EQ(back.attestation, resp.attestation);
    EXPECT_EQ(back.epoch_cert, resp.epoch_cert);
    EXPECT_EQ(back.sn, resp.sn);
    EXPECT_EQ(back.shard_id, resp.shard_id);
    EXPECT_EQ(back.shard_map, resp.shard_map);
    EXPECT_EQ(back.message, resp.message);
    EXPECT_EQ(back.outcome.status(), resp.outcome.status());
  }
}

TEST(WireFuzz, AppendFrameMatchesEncodeFrame) {
  // The zero-copy append_*_frame writers must emit byte-identical frames to
  // the allocate-then-wrap path, appended after whatever the sink held.
  for (const Response& resp : sample_responses()) {
    Bytes classic = encode_frame(encode_response(resp));
    Bytes streamed(3, 0xcc);  // non-empty sink: append must not disturb it
    append_response_frame(streamed, resp);
    ASSERT_GT(streamed.size(), 3u);
    EXPECT_EQ(Bytes(streamed.begin(), streamed.begin() + 3), Bytes(3, 0xcc));
    EXPECT_EQ(Bytes(streamed.begin() + 3, streamed.end()), classic);
  }
  for (MsgOp op : kAllOps) {
    Request req = sample_request(op);
    Bytes classic = encode_frame(encode_request(req));
    Bytes streamed;
    append_request_frame(streamed, req);
    EXPECT_EQ(streamed, classic);
  }
}

TEST(WireFuzz, UnknownAttestationMaskBitIsAParseError) {
  // The v2 attestation slot is a bitmask; bits this build does not know must
  // be refused, not skipped — silent tolerance would let a downgrade-attack
  // server smuggle bytes the client cannot attribute.
  Response pong;
  pong.op = MsgOp::kPing;
  pong.rid = 1;
  pong.status = core::WireStatus::kOk;
  Bytes body = encode_response(pong);
  // Body layout: op u8, rid u64, status u16, then the mask byte.
  const std::size_t mask_off = 1 + 8 + 2;
  ASSERT_EQ(body.at(mask_off), 0u);
  for (std::uint8_t bit = 2; bit < 8; ++bit) {
    Bytes poisoned = body;
    poisoned[mask_off] = static_cast<std::uint8_t>(1u << bit);
    EXPECT_THROW((void)decode_response(poisoned), ParseError) << int(bit);
  }
}

TEST(WireFuzz, EveryStrictRequestTruncationIsAParseError) {
  for (MsgOp op : kAllOps) {
    Bytes body = encode_request(sample_request(op));
    for (std::size_t len = 0; len < body.size(); ++len) {
      Bytes cut(body.begin(), body.begin() + static_cast<std::ptrdiff_t>(len));
      EXPECT_THROW((void)decode_request(cut), ParseError)
          << to_string(op) << " truncated to " << len << "/" << body.size();
    }
  }
}

TEST(WireFuzz, EveryStrictResponseTruncationIsAParseError) {
  for (const Response& resp : sample_responses()) {
    Bytes body = encode_response(resp);
    for (std::size_t len = 0; len < body.size(); ++len) {
      Bytes cut(body.begin(), body.begin() + static_cast<std::ptrdiff_t>(len));
      EXPECT_THROW((void)decode_response(cut), ParseError)
          << to_string(resp.op) << " truncated to " << len << "/"
          << body.size();
    }
  }
}

TEST(WireFuzz, MutatedBodiesNeverEscapeAsAnythingButParseError) {
  crypto::Drbg rng(0xf02);
  for (MsgOp op : kAllOps) {
    Bytes base = encode_request(sample_request(op));
    for (int round = 0; round < 400; ++round) {
      Bytes body = base;
      std::uint64_t edits = 1 + rng.uniform(4);
      for (std::uint64_t e = 0; e < edits; ++e) {
        std::size_t at = rng.uniform(body.size());
        body[at] = static_cast<std::uint8_t>(rng.uniform(256));
      }
      try {
        (void)decode_request(body);  // a benign mutation may still parse
      } catch (const ParseError&) {
      }
    }
  }
  for (const Response& resp : sample_responses()) {
    Bytes base = encode_response(resp);
    for (int round = 0; round < 400; ++round) {
      Bytes body = base;
      std::size_t at = rng.uniform(base.size());
      body[at] ^= static_cast<std::uint8_t>(1u << rng.uniform(8));
      try {
        (void)decode_response(body);
      } catch (const ParseError&) {
      }
    }
  }
}

TEST(WireFuzz, OpcodeSpaceIsExactlyTheFrozenSet) {
  int valid = 0;
  for (int v = 0; v < 256; ++v) {
    try {
      MsgOp op = msg_op_from_u8(static_cast<std::uint8_t>(v));
      EXPECT_EQ(static_cast<int>(op), v);
      ++valid;
    } catch (const ParseError&) {
    }
  }
  EXPECT_EQ(valid, 7);
}

TEST(WireFuzz, StatusSpaceIsExactlyTheFrozenSet) {
  int valid = 0;
  for (std::uint32_t v = 0; v <= 0xffff; ++v) {
    try {
      core::WireStatus s =
          core::wire_status_from_u16(static_cast<std::uint16_t>(v));
      EXPECT_EQ(static_cast<std::uint32_t>(s), v);
      ++valid;
    } catch (const ParseError&) {
    }
  }
  // 8 read-family + 6 server rejections + 11 error taxonomy codes.
  EXPECT_EQ(valid, 25);
}

TEST(WireFuzz, FramingReassemblyAndOversizeCutoff) {
  Bytes body = encode_request(sample_request(MsgOp::kRead));
  Bytes frame = encode_frame(body);

  // Byte-at-a-time arrival: no frame until the last byte lands.
  Bytes buf;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    buf.push_back(frame[i]);
    EXPECT_FALSE(take_frame(buf, kMaxFrameBytes).has_value());
  }
  buf.push_back(frame.back());
  auto got = take_frame(buf, kMaxFrameBytes);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, body);
  EXPECT_TRUE(buf.empty());

  // Two frames back to back come out in order.
  Bytes two = encode_frame(body);
  Bytes second_body = encode_request(sample_request(MsgOp::kPing));
  Bytes second = encode_frame(second_body);
  two.insert(two.end(), second.begin(), second.end());
  EXPECT_EQ(*take_frame(two, kMaxFrameBytes), body);
  EXPECT_EQ(*take_frame(two, kMaxFrameBytes), second_body);
  EXPECT_TRUE(two.empty());

  // A declared length beyond the bound is rejected before the body arrives.
  Bytes huge = {0xff, 0xff, 0xff, 0x7f};
  EXPECT_THROW((void)take_frame(huge, kMaxFrameBytes), ParseError);
}

TEST(WireFuzz, OffsetDrainConsumesAPipelinedBurstThenCompacts) {
  // The server's per-connection read path: many frames arrive in one burst,
  // each is taken by advancing an offset (no per-frame front erase), and the
  // buffer compacts once at the end of the drain.
  std::vector<Bytes> bodies;
  Bytes burst;
  for (int i = 0; i < 6; ++i) {
    Bytes body = encode_request(
        sample_request(i % 2 == 0 ? MsgOp::kRead : MsgOp::kPing));
    Bytes frame = encode_frame(body);
    burst.insert(burst.end(), frame.begin(), frame.end());
    bodies.push_back(std::move(body));
  }
  // A trailing partial frame must survive the drain and the compaction.
  Bytes tail_body = encode_request(sample_request(MsgOp::kLitHold));
  Bytes tail = encode_frame(tail_body);
  burst.insert(burst.end(), tail.begin(), tail.end() - 3);

  std::size_t off = 0;
  for (const Bytes& body : bodies) {
    auto got = take_frame(burst, off, kMaxFrameBytes);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, body);
  }
  EXPECT_FALSE(take_frame(burst, off, kMaxFrameBytes).has_value());

  compact_frames(burst, off);
  EXPECT_EQ(off, 0u);
  EXPECT_EQ(burst.size(), tail.size() - 3);

  // The partial frame completes after compaction and comes out intact.
  burst.insert(burst.end(), tail.end() - 3, tail.end());
  auto got = take_frame(burst, off, kMaxFrameBytes);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, tail_body);
  compact_frames(burst, off);
  EXPECT_TRUE(burst.empty());
}

TEST(WireFuzz, ErrorTaxonomyRoundTripsThroughClassify) {
  // Every typed error classifies to a stable code, crosses the wire as a
  // status, and throw_wire_error reconstructs the matching type.
  EXPECT_THROW(core::throw_wire_error(core::WireStatus::kTransientStorageError,
                                      "disk hiccup"),
               common::TransientStorageError);
  EXPECT_THROW(
      core::throw_wire_error(core::WireStatus::kPreconditionError, "nope"),
      common::PreconditionError);
  EXPECT_THROW(core::throw_wire_error(core::WireStatus::kScpuDead, "gone"),
               core::ScpuDeadError);
  EXPECT_THROW(core::throw_wire_error(core::WireStatus::kNetError, "reset"),
               common::NetError);

  EXPECT_EQ(core::classify(common::TransientStorageError("x")),
            core::ErrorCode::kTransientStorage);
  EXPECT_EQ(core::classify(core::ScpuDeadError("x")), core::ErrorCode::kScpuDead);
  EXPECT_EQ(core::classify(std::runtime_error("x")), core::ErrorCode::kInternal);
  EXPECT_EQ(core::to_wire(core::ErrorCode::kTransientStorage),
            core::WireStatus::kTransientStorageError);
}

}  // namespace
}  // namespace worm::server
