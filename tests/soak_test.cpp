// Long-haul soak: a simulated year of realistic operation — daily mixed-mode
// ingest, continuous expiry of short-retention records, monthly litigation
// activity, nightly idle processing, and a quarterly full-store audit that
// must stay clean throughout. Exercises the interactions (window compaction
// + base advance + key rotation + VEXP churn) that no single-feature test
// composes.
#include <gtest/gtest.h>

#include "worm/auditor.hpp"
#include "worm_fixture.hpp"

namespace worm::core {
namespace {

using common::Duration;
using worm::testing::Rig;

TEST(Soak, OneSimulatedYearOfOperation) {
  core::FirmwareConfig fw = worm::testing::slow_timers_config();
  fw.short_key_rotation = Duration::days(2);
  fw.short_sig_lifetime = Duration::days(3);
  Rig rig(fw);
  crypto::Drbg rng(0x50a1);
  std::uint64_t writes = 0;
  std::uint64_t held = 0;

  for (int day = 1; day <= 365; ++day) {
    // Daily ingest: a few records, mixed retention and witness modes.
    std::size_t today = 2 + rng.uniform(4);
    for (std::size_t i = 0; i < today; ++i) {
      Attr attr;
      attr.retention = (rng.uniform(4) == 0)
                           ? Duration::years(7)          // regulated archive
                           : Duration::days(static_cast<std::int64_t>(
                                 3 + rng.uniform(40)));  // working set
      auto mode = static_cast<WitnessMode>(rng.uniform(3));
      (void)rig.store.write({.payloads = {rng.bytes(100 + rng.uniform(2000))},
                             .attr = attr,
                             .mode = mode});
      ++writes;
    }

    // Monthly: place a hold on some active record; release an old one.
    if (day % 30 == 0) {
      for (Sn sn = 1; sn <= rig.firmware.sn_current(); ++sn) {
        const Vrdt::Entry* e = rig.store.vrdt().find(sn);
        if (e != nullptr && e->kind == Vrdt::Entry::Kind::kActive &&
            !e->vrd.attr.litigation_hold) {
          rig.store.lit_hold(
              {.sn = sn,
               .lit_id = sn,
               .hold_until = rig.clock.now() + Duration::days(45),
               .cred_issued_at = rig.clock.now(),
               .credential = rig.lit_credential(sn, sn, true)});
          ++held;
          break;
        }
      }
    }

    // Night: one day passes; the store does its idle duties.
    rig.clock.advance(Duration::days(1));
    rig.store.pump_idle();

    // Quarterly full audit must be clean.
    if (day % 90 == 0) {
      while (rig.store.pump_idle()) {
      }
      auto verifier = rig.fresh_verifier();
      AuditReport report = Auditor::audit_store(rig.store, verifier);
      ASSERT_TRUE(report.clean())
          << "day " << day << ": " << Auditor::summarize(report);
      EXPECT_EQ(report.scanned(),
                static_cast<std::size_t>(rig.firmware.sn_current()));
    }
  }

  // Year-end invariants.
  while (rig.store.pump_idle()) {
  }
  EXPECT_EQ(rig.firmware.counters().writes, writes);
  EXPECT_GT(rig.firmware.counters().deletions, writes / 2);  // working set died
  EXPECT_GT(rig.store.counters().at("store.compactions"), 0u);
  // (Base advance usually stays at 0 here: an early 7-year record pins the
  // window base for the whole year — realistic, and why multi-window
  // compaction exists.)
  EXPECT_GT(held, 5u);
  EXPECT_EQ(rig.firmware.deferred_count(), 0u);

  // Thanks to compaction the VRDT carries roughly one item per *retained*
  // record (the ~25% long-retention ones) plus one window per gap — far
  // fewer than one deletion proof per expired record.
  std::size_t items =
      rig.store.vrdt().entry_count() + rig.store.vrdt().window_count();
  EXPECT_LT(items, (writes * 3) / 4);
  EXPECT_GT(rig.firmware.counters().deletions + rig.store.vrdt().active_count(),
            writes - 1);  // every record accounted for: deleted or active

  auto verifier = rig.fresh_verifier();
  AuditReport final_report = Auditor::audit_store(rig.store, verifier);
  EXPECT_TRUE(final_report.clean()) << Auditor::summarize(final_report);
}

TEST(Soak, ChannelBackedStoreMatchesDirectFirmwareProofStream) {
  // The mailbox/channel transport must be semantically invisible: the proof
  // stream a WormStore produces through serialized commands has to be
  // byte-identical to what the same workload produces by calling the
  // firmware directly. Zero-cost models pin simulated time on both sides so
  // signatures (which embed SCPU timestamps) can be compared byte for byte.
  Rig through_store({}, {}, 32u << 20, scpu::CostModel::zero());
  Rig direct({}, {}, 32u << 20, scpu::CostModel::zero());

  struct Item {
    std::string text;
    Duration retention;
    WitnessMode mode;
  };
  std::vector<Item> workload;
  crypto::Drbg rng(0x1d397);
  for (int i = 0; i < 40; ++i) {
    workload.push_back({"record " + std::to_string(i),
                        Duration::hours(static_cast<std::int64_t>(
                            1 + rng.uniform(500))),
                        static_cast<WitnessMode>(rng.uniform(3))});
  }

  std::vector<Sn> sns;
  std::vector<WriteWitness> direct_witnesses;
  for (const auto& item : workload) {
    common::Bytes payload = common::to_bytes(item.text);
    sns.push_back(through_store.store.write(
        {.payloads = {payload},
         .attr = through_store.attr(item.retention),
         .mode = item.mode}));
    storage::RecordDescriptor rd = direct.records.write(payload);
    direct_witnesses.push_back(direct.firmware.write(
        direct.attr(item.retention), {rd}, {payload}, {}, item.mode,
        HashMode::kScpuHash));
  }

  for (std::size_t i = 0; i < workload.size(); ++i) {
    const Vrdt::Entry* e = through_store.store.vrdt().find(sns[i]);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->vrd.sn, direct_witnesses[i].sn);
    EXPECT_EQ(e->vrd.data_hash, direct_witnesses[i].data_hash);
    EXPECT_EQ(e->vrd.metasig.value, direct_witnesses[i].metasig.value)
        << "metasig diverged at record " << i;
    EXPECT_EQ(e->vrd.datasig.value, direct_witnesses[i].datasig.value)
        << "datasig diverged at record " << i;
  }
}

}  // namespace
}  // namespace worm::core
