// Shared test rig: one simulated deployment (clock + SCPU + firmware + block
// device + record store + WormStore + regulator authority + client verifier).
#pragma once

#include <memory>
#include <optional>

#include "common/sim_clock.hpp"
#include "crypto/rsa.hpp"
#include "scpu/key_cache.hpp"
#include "scpu/scpu_device.hpp"
#include "storage/block_device.hpp"
#include "storage/record_store.hpp"
#include "worm/client_verifier.hpp"
#include "worm/envelopes.hpp"
#include "worm/firmware.hpp"
#include "worm/migrator.hpp"
#include "worm/worm_store.hpp"

namespace worm::testing {

inline constexpr std::uint64_t kRegulatorSeed = 0x1e6a1;

inline const crypto::RsaPrivateKey& regulator_key() {
  return scpu::cached_rsa_key(kRegulatorSeed, 1024);
}

/// One full deployment. Tweak configs before first use via the constructor.
/// `cost_model` defaults to the calibrated IBM 4764 model; pass
/// CostModel::zero() when a test needs two rigs to produce byte-identical
/// proof streams (signatures embed creation times, so time must not move).
struct Rig {
  explicit Rig(core::FirmwareConfig fw_config = {},
               core::StoreConfig store_config = {},
               std::size_t secure_mem = 32u << 20,
               const scpu::CostModel& cost_model = scpu::CostModel::ibm4764())
      : device(clock, cost_model, secure_mem),
        firmware(device, fw_config, regulator_key().public_key()),
        disk(4096, 4096, &clock, storage::LatencyModel::none()),
        records(disk),
        store(clock, firmware, records, store_config),
        verifier(store.anchors(), clock) {}

  /// Default attributes: given retention, zero-fill shredding.
  core::Attr attr(common::Duration retention,
                  storage::ShredPolicy shred =
                      storage::ShredPolicy::kZeroFill) const {
    core::Attr a;
    a.retention = retention;
    a.shredding = shred;
    a.regulation_policy = 17;  // SEC rule 17a-4, say
    return a;
  }

  /// Single-payload write helper.
  core::Sn put(const std::string& text, common::Duration retention,
               std::optional<core::WitnessMode> mode = std::nullopt) {
    return store.write({.payloads = {common::to_bytes(text)},
                        .attr = attr(retention),
                        .mode = mode});
  }

  /// Regulator-signed litigation credential.
  common::Bytes lit_credential(core::Sn sn, std::uint64_t lit_id, bool hold) {
    return crypto::rsa_sign(
        regulator_key(),
        core::lit_credential_payload(sn, clock.now(), lit_id, hold));
  }

  /// Refreshed verifier (e.g. after new short-key epochs appear).
  core::ClientVerifier fresh_verifier() {
    return core::ClientVerifier(store.anchors(), clock);
  }

  common::SimClock clock;
  scpu::ScpuDevice device;
  core::Firmware firmware;
  storage::MemBlockDevice disk;
  storage::RecordStore records;
  core::WormStore store;
  core::ClientVerifier verifier;
};

/// Firmware config with long heartbeat/rotation periods so tests can
/// fast-forward months of simulated time without millions of alarm firings.
inline core::FirmwareConfig slow_timers_config() {
  core::FirmwareConfig c;
  c.heartbeat_interval = common::Duration::days(1);
  c.short_key_rotation = common::Duration::days(1);
  c.sn_current_max_age = common::Duration::days(2);
  c.sn_base_validity = common::Duration::days(2);
  return c;
}

}  // namespace worm::testing
