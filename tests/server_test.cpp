// WormServer integration: authentication, remote read/write/litigation with
// client-side verification (the server is untrusted), proof-stream
// equivalence against in-process reads, kBusy backpressure on the wire,
// attestation forwarding, and conviction of a server that tampers with a
// response in flight.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <optional>
#include <poll.h>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <vector>

#include "fault_fixture.hpp"
#include "server/client/worm_client.hpp"
#include "server/worm_server.hpp"
#include "worm_fixture.hpp"

namespace worm::server {
namespace {

using common::Bytes;
using common::Duration;
using worm::testing::outcome_fingerprint;
using worm::testing::regulator_key;
using worm::testing::Rig;

core::StoreConfig pipelined() {
  core::StoreConfig sc;
  sc.pipeline.enabled = true;
  return sc;
}

/// One simulated deployment plus a WormServer over loopback TCP.
struct ServerRig {
  explicit ServerRig(core::StoreConfig sc = pipelined(),
                     ServerConfig cfg = ServerConfig{}) : rig({}, sc) {
    auth.add("alice", common::to_bytes("alice-secret"));
    auth.add("bob", common::to_bytes("bob-secret"));
    server.emplace(cfg, auth,
                   [this](std::string_view principal) {
                     return std::make_unique<core::WormSession>(
                         rig.store, std::string(principal), rig.clock);
                   });
    server->start();
  }

  ClientConfig client_config(const std::string& principal) const {
    ClientConfig c;
    c.tcp_port = server->port();
    c.principal = principal;
    c.token = auth.mint(principal);
    return c;
  }

  WormClient connect(const std::string& principal = "alice") {
    return WormClient(client_config(principal));
  }

  core::WriteRequest record(const std::string& text) const {
    core::WriteRequest w;
    w.payloads = {common::to_bytes(text)};
    w.attr.retention = Duration::days(30);
    w.attr.regulation_policy = 17;
    return w;
  }

  Rig rig;
  AuthRegistry auth;
  std::optional<WormServer> server;
};

/// Blocking request/response over a raw socket, for tests that must speak
/// below the client library (unauthenticated frames, garbage).
Response raw_transact(const common::Socket& sock, const Request& req) {
  Bytes frame = encode_frame(encode_request(req));
  std::size_t off = 0;
  while (off < frame.size()) {
    if (common::write_some(sock, frame, off) == common::IoResult::kError) {
      throw common::NetError("raw_transact: send failed");
    }
  }
  Bytes in;
  for (;;) {
    if (auto body = take_frame(in, kMaxFrameBytes)) {
      return decode_response(*body);
    }
    std::vector<common::PollFd> pfds{{sock.fd(), POLLIN, 0}};
    if (common::poll_fds(pfds, Duration::seconds(10)) == 0) {
      throw common::NetError("raw_transact: timed out");
    }
    auto r = common::read_some(sock, in, 4096);
    if (r == common::IoResult::kClosed || r == common::IoResult::kError) {
      throw common::NetError("raw_transact: connection closed");
    }
  }
}

TEST(WormServer, RejectsBadTokenAndUnknownPrincipal) {
  ServerRig srv;

  ClientConfig bad = srv.client_config("alice");
  bad.token = Bytes(32, 0x00);
  EXPECT_THROW((void)WormClient(std::move(bad)), common::Error);

  ClientConfig mallory = srv.client_config("alice");
  mallory.principal = "mallory";
  EXPECT_THROW((void)WormClient(std::move(mallory)), common::Error);

  EXPECT_GE(srv.server->stats().auth_failures, 2u);

  // A legitimate holder of the secret still gets in.
  WormClient ok = srv.connect("alice");
  ok.ping();
}

TEST(WormServer, RefusesRequestsBeforeHello) {
  ServerRig srv;
  common::Socket sock = common::connect_tcp_loopback(srv.server->port());
  Request read;
  read.op = MsgOp::kRead;
  read.rid = 9;
  read.sn = 1;
  Response resp = raw_transact(sock, read);
  EXPECT_EQ(resp.status, core::WireStatus::kAuthRequired);
  EXPECT_EQ(resp.rid, 9u);
}

TEST(WormServer, GarbageFrameAnswersParseErrorAndDrops) {
  ServerRig srv;
  common::Socket sock = common::connect_tcp_loopback(srv.server->port());
  Bytes garbage = {0xde, 0xad, 0xbe, 0xef, 0x99};
  Bytes frame = encode_frame(garbage);
  std::size_t off = 0;
  while (off < frame.size()) {
    ASSERT_NE(common::write_some(sock, frame, off), common::IoResult::kError);
  }
  Bytes in;
  std::optional<Response> resp;
  for (int i = 0; i < 10000 && !resp; ++i) {
    std::vector<common::PollFd> pfds{{sock.fd(), POLLIN, 0}};
    (void)common::poll_fds(pfds, Duration::millis(10));
    auto r = common::read_some(sock, in, 4096);
    if (auto body = take_frame(in, kMaxFrameBytes)) resp = decode_response(*body);
    if (r == common::IoResult::kClosed) break;
  }
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, core::WireStatus::kParseError);
  EXPECT_GE(srv.server->stats().parse_errors, 1u);
}

TEST(WormServer, WriteReadVerifyAcrossTheWire) {
  ServerRig srv;
  WormClient client = srv.connect();

  for (int i = 0; i < 10; ++i) {
    WriteResult w = client.write(srv.record("record " + std::to_string(i)));
    ASSERT_TRUE(w.ok()) << w.message;
    EXPECT_EQ(w.sn, static_cast<core::Sn>(i + 1));
  }

  // The server is untrusted: verify what came over the wire against
  // out-of-band anchors.
  core::ClientVerifier verifier = srv.rig.fresh_verifier();
  for (core::Sn sn = 1; sn <= 10; ++sn) {
    core::ReadOutcome out = client.read(sn);
    core::Outcome v = verifier.verify_read(sn, out);
    EXPECT_EQ(v.verdict, core::Verdict::kAuthentic) << sn << ": " << v.detail;
  }

  // Absence is proven too, not just asserted.
  core::ReadOutcome gone = client.read(1000);
  EXPECT_EQ(gone.status(), core::ReadStatus::kNotAllocated);
  EXPECT_EQ(verifier.verify_read(1000, gone).verdict,
            core::Verdict::kNeverExistedVerified);
}

TEST(WormServer, ProofStreamMatchesInProcessReads) {
  ServerRig srv;
  WormClient client = srv.connect();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.write(srv.record("r" + std::to_string(i))).ok());
  }
  for (core::Sn sn = 1; sn <= 6; ++sn) {  // 6 = one past the top
    core::ReadOutcome remote = client.read(sn);
    core::ReadOutcome local = srv.rig.store.read(sn);
    EXPECT_EQ(outcome_fingerprint(remote), outcome_fingerprint(local))
        << "wire and in-process proof streams diverge at sn " << sn;
  }
}

TEST(WormServer, AttestationForwardingCarriesFreshWatermark) {
  ServerRig srv;
  WormClient client = srv.connect();
  ASSERT_TRUE(client.write(srv.record("watermarked")).ok());

  // The epoch cert rode the write ack to the client — the amortized
  // freshness carrier covering every read inside its interval. The first
  // cert may predate the write (it lags by up to one interval by design);
  // once the interval elapses the next write's crossing re-signs it and
  // the ack forwards the newer one.
  ASSERT_TRUE(client.epoch_cert().has_value());
  const std::uint64_t first_epoch = client.epoch_cert()->epoch;
  srv.rig.clock.advance(srv.rig.firmware.config().epoch_interval +
                        Duration::seconds(1));
  ASSERT_TRUE(client.write(srv.record("second")).ok());
  ASSERT_TRUE(client.epoch_cert().has_value());
  EXPECT_GT(client.epoch_cert()->epoch, first_epoch);
  EXPECT_GE(client.epoch_cert()->sn_current, 1u);
  core::ClientVerifier verifier = srv.rig.fresh_verifier();
  EXPECT_EQ(verifier.verify_epoch_cert(*client.epoch_cert()).verdict,
            core::Verdict::kAuthentic);

  // While the session is fresh, a ping must NOT cross the mailbox for a new
  // attestation (counter-verified) — steady state is O(1) amortized.
  const std::uint64_t hb0 = srv.rig.firmware.counters().heartbeats;
  client.ping();
  EXPECT_EQ(srv.rig.firmware.counters().heartbeats, hb0);

  // Past the freshness horizon the ping refreshes, and the pong forwards
  // the moved watermark.
  srv.rig.clock.advance(srv.rig.store.freshness_horizon() +
                        Duration::seconds(1));
  client.ping();
  ASSERT_TRUE(client.attestation().has_value());
  const core::SignedSnCurrent& att = *client.attestation();
  EXPECT_GE(att.sn_current, 1u);
  // Clients adopt it only after checking the SCPU signature.
  EXPECT_EQ(verifier.verify_current(att, att.sn_current + 1).verdict,
            core::Verdict::kNeverExistedVerified);
}

TEST(WormServer, LitigationOverTheWire) {
  ServerRig srv;
  WormClient client = srv.connect();
  ASSERT_TRUE(client.write(srv.record("held evidence")).ok());

  common::SimTime t = srv.rig.clock.now();
  core::LitigationRequest hold;
  hold.sn = 1;
  hold.lit_id = 5;
  hold.hold_until = t + Duration::days(365);
  hold.cred_issued_at = t;
  hold.credential = crypto::rsa_sign(
      regulator_key(), core::lit_credential_payload(1, t, 5, true));
  client.lit_hold(hold);

  // A forged credential is refused with the same exception type an
  // in-process caller gets (the SCPU rejects it at the mailbox).
  core::LitigationRequest forged = hold;
  forged.lit_id = 6;
  EXPECT_THROW(client.lit_hold(forged), core::ChannelError);

  common::SimTime t2 = srv.rig.clock.now();
  core::LitigationRequest release;
  release.sn = 1;
  release.lit_id = 5;
  release.cred_issued_at = t2;
  release.credential = crypto::rsa_sign(
      regulator_key(), core::lit_credential_payload(1, t2, 5, false));
  client.lit_release(release);

  core::ClientVerifier verifier = srv.rig.fresh_verifier();
  EXPECT_TRUE(verifier.verify_read(1, client.read(1)).trustworthy());
}

TEST(WormServer, TamperedResponseConvictedByTheClient) {
  common::FaultInjector fault(0x7a3);
  ServerConfig cfg;
  cfg.fault = &fault;
  ServerRig srv(pipelined(), cfg);
  WormClient client = srv.connect();
  ASSERT_TRUE(client.write(srv.record("the inconvenient record")).ok());

  core::ClientVerifier verifier = srv.rig.fresh_verifier();
  core::ReadOutcome clean = client.read(1);
  ASSERT_EQ(verifier.verify_read(1, clean).verdict, core::Verdict::kAuthentic);

  // The server now flips one bit of the next served read response between
  // store and socket — the §4.1 adversary. Framing survives (the flip lands
  // in payload bytes), so the client gets a well-formed envelope whose data
  // no longer matches the SCPU-signed hash.
  fault.schedule("server.response", common::FaultKind::kBitFlip, 1);
  core::ReadOutcome tampered = client.read(1);
  core::Outcome v = verifier.verify_read(1, tampered);
  EXPECT_EQ(v.verdict, core::Verdict::kTampered) << v.detail;
  EXPECT_FALSE(v.trustworthy());

  // One flip, one conviction; the next read is honest again.
  EXPECT_EQ(verifier.verify_read(1, client.read(1)).verdict,
            core::Verdict::kAuthentic);
}

TEST(WormServer, ConcurrentClientsRaceWritesReadsAndHolds) {
  ServerRig srv;
  constexpr int kClients = 8;
  constexpr int kWritesEach = 10;

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  std::vector<std::vector<core::Sn>> claimed(kClients);
  threads.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        WormClient client = srv.connect(c % 2 == 0 ? "alice" : "bob");
        core::ClientVerifier verifier = srv.rig.fresh_verifier();
        common::Backoff backoff;
        for (int i = 0; i < kWritesEach; ++i) {
          WriteResult w;
          std::uint32_t attempt = 0;
          do {
            w = client.write(srv.record("c" + std::to_string(c) + " #" +
                                        std::to_string(i)));
            if (w.busy()) common::sleep_real(backoff.delay(attempt++));
          } while (w.busy());
          if (!w.ok()) throw common::InternalError(w.message);
          claimed[c].push_back(w.sn);
          // Read back a record this client already owns; under the race the
          // proof must still verify (or be a retryable unavailable while the
          // group is in flight — never a wrong answer).
          core::Sn probe = claimed[c][static_cast<std::size_t>(i) / 2];
          core::ReadOutcome out = client.read(probe);
          if (out.served()) {
            if (verifier.verify_read(probe, out).verdict !=
                core::Verdict::kAuthentic) {
              throw common::InternalError("unauthentic read under race");
            }
          } else if (out.status() != core::ReadStatus::kUnavailable) {
            throw common::InternalError("non-retryable miss under race");
          }
        }
      } catch (const std::exception& e) {
        ADD_FAILURE() << "client " << c << ": " << e.what();
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  // Every admission claimed a distinct SN and all of them verify.
  std::vector<core::Sn> all;
  for (const auto& v : claimed) all.insert(all.end(), v.begin(), v.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kClients * kWritesEach));
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
  EXPECT_EQ(srv.rig.store.counters_snapshot(core::CounterFlush::kSettled).writes,
            static_cast<std::uint64_t>(kClients * kWritesEach));
}

TEST(WormServer, OverloadAnswersBusyInsteadOfStalling) {
  core::StoreConfig sc = pipelined();
  sc.pipeline.queue_capacity = 1;
  sc.pipeline.max_batch = 1;
  ServerRig srv(sc);

  constexpr int kClients = 6;
  constexpr int kWritesEach = 25;
  std::atomic<std::uint64_t> busy_seen{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        WormClient client = srv.connect();
        common::Backoff backoff;
        for (int i = 0; i < kWritesEach; ++i) {
          std::uint32_t attempt = 0;
          for (;;) {
            WriteResult w = client.write(
                srv.record("burst " + std::to_string(c * 1000 + i)));
            if (w.ok()) break;
            if (!w.busy()) throw common::InternalError(w.message);
            busy_seen.fetch_add(1);
            // Overload must not wedge the event loop: the same connection
            // still answers reads while the pipeline is full.
            (void)client.read(1);
            common::sleep_real(backoff.delay(attempt++));
          }
        }
      } catch (const std::exception& e) {
        ADD_FAILURE() << "client " << c << ": " << e.what();
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  core::CountersSnapshot counters =
      srv.rig.store.counters_snapshot(core::CounterFlush::kSettled);
  EXPECT_EQ(counters.write_pipeline_queued,
            static_cast<std::uint64_t>(kClients * kWritesEach));
  EXPECT_GT(busy_seen.load(), 0u)
      << "a 1-deep queue under 6 concurrent writers must reject some";
  EXPECT_EQ(srv.server->stats().busy, busy_seen.load());
  EXPECT_EQ(counters.write_pipeline_busy_rejected, busy_seen.load());
}

TEST(WormServer, ThrowingSessionFactoryAnswersErrorAndSurvives) {
  Rig rig({}, pipelined());
  AuthRegistry auth;
  auth.add("alice", common::to_bytes("alice-secret"));
  auth.add("deadbeat", common::to_bytes("deadbeat-secret"));
  WormServer server(
      ServerConfig{}, auth,
      [&rig](std::string_view principal)
          -> std::unique_ptr<core::WormSession> {
        if (principal == "deadbeat") {
          throw common::InternalError("store degraded during session mint");
        }
        return std::make_unique<core::WormSession>(
            rig.store, std::string(principal), rig.clock);
      });
  server.start();

  // A factory throw must come back as a wire error on the offending
  // connection, not escape the event loop (which would kill the process).
  common::Socket sock = common::connect_tcp_loopback(server.port());
  Request hello;
  hello.op = MsgOp::kHello;
  hello.rid = 7;
  hello.version = kProtocolVersion;
  hello.principal = "deadbeat";
  hello.token = auth.mint("deadbeat");
  Response resp = raw_transact(sock, hello);
  EXPECT_EQ(resp.status, core::WireStatus::kInternalError);
  EXPECT_EQ(resp.rid, 7u);
  EXPECT_GE(server.stats().errors, 1u);

  // The server survived; a healthy principal still authenticates.
  ClientConfig ok;
  ok.tcp_port = server.port();
  ok.principal = "alice";
  ok.token = auth.mint("alice");
  WormClient client(std::move(ok));
  client.ping();
}

TEST(WormServer, AbruptPeerResetIsReapedNotLeaked) {
  ServerConfig cfg;
  cfg.max_connections = 1;
  ServerRig srv(pipelined(), cfg);

  {
    // Seed one fat record so read responses dwarf the socket buffers.
    WormClient writer = srv.connect("alice");
    core::WriteRequest big = srv.record("x");
    big.payloads = {Bytes(256 * 1024, 0xab)};
    ASSERT_TRUE(writer.write(std::move(big)).ok());
  }  // orderly close frees the single connection slot

  {
    // Pipeline far more read responses than the kernel will buffer, never
    // read any, then reset the connection. The stranded response backlog
    // must not pin the Conn forever.
    Request hello;
    hello.op = MsgOp::kHello;
    hello.rid = 1;
    hello.version = kProtocolVersion;
    hello.principal = "alice";
    hello.token = srv.auth.mint("alice");
    common::Socket sock;
    std::optional<Response> resp;
    for (int i = 0; i < 5000 && !resp.has_value(); ++i) {
      try {
        sock = common::connect_tcp_loopback(srv.server->port());
        resp = raw_transact(sock, hello);
      } catch (const common::NetError&) {
        common::sleep_real(Duration::millis(1));  // writer slot not yet freed
      }
    }
    ASSERT_TRUE(resp.has_value());
    ASSERT_EQ(resp->status, core::WireStatus::kOk);

    Request read;
    read.op = MsgOp::kRead;
    read.sn = 1;
    Bytes burst;
    for (std::uint64_t rid = 2; rid < 202; ++rid) {
      read.rid = rid;
      Bytes frame = encode_frame(encode_request(read));
      burst.insert(burst.end(), frame.begin(), frame.end());
    }
    // A trailing garbage frame flips the connection to closing (reads stop)
    // while the response backlog is still queued — the exact state where a
    // failed flush used to strand the Conn forever.
    Bytes garbage = encode_frame({0xde, 0xad});
    burst.insert(burst.end(), garbage.begin(), garbage.end());
    std::size_t off = 0;
    while (off < burst.size()) {
      ASSERT_NE(common::write_some(sock, burst, off),
                common::IoResult::kError);
    }
    // Wait for the server to decode the burst (an RST would discard
    // anything still sitting unread in its receive buffer).
    for (int i = 0; i < 5000 && srv.server->stats().requests < 202; ++i) {
      common::sleep_real(Duration::millis(1));
    }
    ASSERT_GE(srv.server->stats().requests, 202u);
    // RST instead of FIN: the server's next write on this connection fails.
    struct linger hard {1, 0};
    ASSERT_EQ(::setsockopt(sock.fd(), SOL_SOCKET, SO_LINGER, &hard,
                           sizeof(hard)),
              0);
  }  // destructor closes -> RST

  // With max_connections = 1, a fresh client only gets in once the dead
  // connection is reaped (fd released, live count decremented). The TCP
  // connect itself lands in the backlog regardless, so retry the whole
  // handshake: until the reap, the server accepts and immediately closes.
  std::optional<WormClient> replacement;
  for (int i = 0; i < 5000 && !replacement.has_value(); ++i) {
    try {
      replacement.emplace(srv.client_config("bob"));
    } catch (const common::NetError&) {
      common::sleep_real(Duration::millis(1));
    }
  }
  ASSERT_TRUE(replacement.has_value())
      << "dead connection was never reaped; its slot is leaked";
  replacement->ping();
}

TEST(WormClient, IoTimeoutBoundsTheWholeRoundTrip) {
  // A server that trickles one byte per poll wakeup must not keep resetting
  // the client's timeout window: io_timeout is an absolute deadline on the
  // round trip.
  std::uint16_t port = 0;
  common::Socket listener = common::listen_tcp_loopback(0, &port);

  std::thread trickler([&listener] {
    common::Socket conn;
    for (int i = 0; i < 5000 && !conn.valid(); ++i) {
      conn = common::accept_connection(listener);
      if (!conn.valid()) common::sleep_real(Duration::millis(1));
    }
    if (!conn.valid()) return;

    // Swallow the hello.
    Bytes in;
    std::size_t in_off = 0;
    while (!take_frame(in, in_off, kMaxFrameBytes)) {
      std::vector<common::PollFd> pfds{{conn.fd(), POLLIN, 0}};
      if (common::poll_fds(pfds, Duration::seconds(5)) == 0) return;
      auto r = common::read_some(conn, in, 4096);
      if (r == common::IoResult::kClosed || r == common::IoResult::kError) {
        return;
      }
    }

    // Answer it correctly — but one byte per 100 ms, slower than the
    // client's deadline yet faster than its per-poll window.
    Response pong;
    pong.op = MsgOp::kHello;
    pong.rid = 1;
    pong.status = core::WireStatus::kOk;
    Bytes frame = encode_frame(encode_response(pong));
    for (std::uint8_t byte : frame) {
      Bytes one{byte};
      std::size_t off = 0;
      while (off < one.size()) {
        auto r = common::write_some(conn, one, off);
        if (r == common::IoResult::kWouldBlock) continue;
        if (r != common::IoResult::kOk) return;  // client gave up: done
      }
      common::sleep_real(Duration::millis(100));
    }
  });

  ClientConfig cfg;
  cfg.tcp_port = port;
  cfg.principal = "alice";
  cfg.token = Bytes(32, 0x11);
  cfg.connect_attempts = 1;
  cfg.io_timeout = Duration::millis(400);
  common::Duration start = common::now_real();
  EXPECT_THROW((void)WormClient(std::move(cfg)), common::NetError);
  common::Duration elapsed = common::now_real() - start;
  // Well under the ~4 s the full trickle would take; generous upper bound
  // for loaded CI machines.
  EXPECT_LT(elapsed.ns, Duration::seconds(3).ns);
  trickler.join();
}

TEST(WormServer, ConnectionCapRefusesTheOverflow) {
  ServerConfig cfg;
  cfg.max_connections = 2;
  ServerRig srv(pipelined(), cfg);
  WormClient a = srv.connect("alice");
  WormClient b = srv.connect("bob");
  ClientConfig third = srv.client_config("alice");
  third.connect_attempts = 1;
  EXPECT_THROW((void)WormClient(std::move(third)), common::NetError);
  EXPECT_GE(srv.server->stats().rejected_full, 1u);
  a.ping();  // the admitted connections are unaffected
  b.ping();
}

}  // namespace
}  // namespace worm::server
