// Unit tests for the common substrate: bytes/hex, serialization round-trips,
// and the simulated clock's alarm semantics (the retention monitor's engine).
#include <gtest/gtest.h>

#include <stdexcept>

#include "common/bytes.hpp"
#include "common/serial.hpp"
#include "common/sim_clock.hpp"

namespace worm::common {
namespace {

TEST(Bytes, HexRoundTrip) {
  Bytes b = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(hex_encode(b), "0001abff");
  EXPECT_EQ(hex_decode("0001abff"), b);
  EXPECT_EQ(hex_decode("0001ABFF"), b);
}

TEST(Bytes, HexDecodeRejectsBadInput) {
  EXPECT_THROW(hex_decode("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(hex_decode("zz"), std::invalid_argument);    // bad digit
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(hex_encode(Bytes{}), "");
  EXPECT_TRUE(hex_decode("").empty());
}

TEST(Bytes, CtEqual) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  Bytes d = {1, 2};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, d));
  EXPECT_TRUE(ct_equal(Bytes{}, Bytes{}));
}

TEST(Bytes, StringConversions) {
  Bytes b = to_bytes("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(to_string(b), "hello");
}

TEST(Serial, ScalarRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.i64(-42);
  w.boolean(true);
  w.boolean(false);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_NO_THROW(r.expect_end());
}

TEST(Serial, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  Bytes expected = {0x04, 0x03, 0x02, 0x01};
  EXPECT_EQ(w.bytes(), expected);
}

TEST(Serial, BlobAndStringRoundTrip) {
  ByteWriter w;
  w.blob(to_bytes("payload"));
  w.str("name");
  ByteReader r(w.bytes());
  EXPECT_EQ(to_string(r.blob()), "payload");
  EXPECT_EQ(r.str(), "name");
  r.expect_end();
}

TEST(Serial, TruncationThrows) {
  ByteWriter w;
  w.u32(7);
  Bytes data = w.bytes();
  data.pop_back();
  ByteReader r(data);
  EXPECT_THROW(r.u32(), ParseError);
}

TEST(Serial, BlobLengthBeyondBufferThrows) {
  ByteWriter w;
  w.u32(1000);  // claims 1000 bytes follow
  ByteReader r(w.bytes());
  EXPECT_THROW(r.blob(), ParseError);
}

TEST(Serial, TrailingBytesDetected) {
  ByteWriter w;
  w.u8(1);
  w.u8(2);
  ByteReader r(w.bytes());
  (void)r.u8();
  EXPECT_THROW(r.expect_end(), ParseError);
}

TEST(Serial, InvalidBooleanThrows) {
  Bytes data = {2};
  ByteReader r(data);
  EXPECT_THROW(r.boolean(), ParseError);
}

TEST(SimClock, StartsAtEpoch) {
  SimClock clock;
  EXPECT_EQ(clock.now(), SimTime::epoch());
}

TEST(SimClock, ChargeMovesTimeWithoutDispatch) {
  SimClock clock;
  int fired = 0;
  clock.schedule_after(Duration::seconds(1), [&] { ++fired; });
  clock.charge(Duration::seconds(5));
  EXPECT_EQ(fired, 0);  // charge never dispatches
  clock.dispatch_due();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(clock.total_charged(), Duration::seconds(5));
}

TEST(SimClock, AlarmsFireInTimestampOrder) {
  SimClock clock;
  std::vector<int> order;
  clock.schedule_after(Duration::seconds(3), [&] { order.push_back(3); });
  clock.schedule_after(Duration::seconds(1), [&] { order.push_back(1); });
  clock.schedule_after(Duration::seconds(2), [&] { order.push_back(2); });
  clock.advance(Duration::seconds(10));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimClock, EqualTimestampsFifo) {
  SimClock clock;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    clock.schedule_after(Duration::seconds(1), [&order, i] { order.push_back(i); });
  }
  clock.advance(Duration::seconds(1));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimClock, CallbackObservesScheduledTime) {
  SimClock clock;
  SimTime seen{};
  clock.schedule_after(Duration::seconds(7), [&] { seen = clock.now(); });
  clock.advance(Duration::seconds(100));
  EXPECT_EQ(seen, SimTime::epoch() + Duration::seconds(7));
  EXPECT_EQ(clock.now(), SimTime::epoch() + Duration::seconds(100));
}

TEST(SimClock, CancelPreventsFiring) {
  SimClock clock;
  int fired = 0;
  AlarmId id = clock.schedule_after(Duration::seconds(1), [&] { ++fired; });
  EXPECT_TRUE(clock.cancel(id));
  EXPECT_FALSE(clock.cancel(id));  // second cancel reports already-gone
  clock.advance(Duration::seconds(2));
  EXPECT_EQ(fired, 0);
}

TEST(SimClock, CallbackMayReschedule) {
  SimClock clock;
  int fired = 0;
  std::function<void()> tick = [&] {
    ++fired;
    if (fired < 3) clock.schedule_after(Duration::seconds(1), tick);
  };
  clock.schedule_after(Duration::seconds(1), tick);
  clock.advance(Duration::seconds(10));
  EXPECT_EQ(fired, 3);
}

TEST(SimClock, NextAlarmReporting) {
  SimClock clock;
  EXPECT_EQ(clock.next_alarm(), SimTime::max());
  clock.schedule_after(Duration::seconds(4), [] {});
  clock.schedule_after(Duration::seconds(2), [] {});
  EXPECT_EQ(clock.next_alarm(), SimTime::epoch() + Duration::seconds(2));
}

TEST(SimClock, AdvanceToPastIsNoOp) {
  SimClock clock;
  clock.advance(Duration::seconds(5));
  clock.advance_to(SimTime::epoch() + Duration::seconds(1));
  EXPECT_EQ(clock.now(), SimTime::epoch() + Duration::seconds(5));
}

TEST(Duration, ArithmeticAndConversions) {
  EXPECT_EQ(Duration::minutes(2).ns, 120'000'000'000);
  EXPECT_EQ(Duration::years(20).ns, 20ll * 365 * 24 * 3600 * 1'000'000'000);
  EXPECT_DOUBLE_EQ(Duration::millis(1500).to_seconds_f(), 1.5);
  EXPECT_EQ(Duration::from_seconds_f(0.25), Duration::millis(250));
  EXPECT_EQ(Duration::seconds(3) * 4, Duration::seconds(12));
}

}  // namespace
}  // namespace worm::common
