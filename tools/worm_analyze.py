#!/usr/bin/env python3
"""worm-analyze: cross-TU semantic analysis for the strongworm tree.

worm_lint.py checks lexical, single-file invariants. This tool checks the
*global* architectural invariants that need a view of every translation unit
at once — the properties the paper's security argument rests on but no
compiler flag or per-file regex can prove:

  lock-order       Extracts every MutexLock/ExclusiveLock/SharedLock guard
                   construction (plus REQUIRES/assert_held facts), computes
                   the set of locks held at every call site, propagates
                   "acquires B while holding A" edges through the cross-TU
                   call graph, and fails on any cycle in the resulting global
                   lock-order graph. An acyclic graph means no schedule of
                   the annotated locks can deadlock; a cycle names the exact
                   acquisition chain that can.

  wire-taint       Bytes read from the network (common/net read_some) are
                   untrusted until they pass a strict protocol:: decoder or
                   an auth/verifier check. Tracks taint through assignments,
                   take_frame, and cross-TU function parameters; a tainted
                   value reaching a WormSession operation or a store
                   mutation API is a finding — it means attacker-controlled
                   bytes hit the trust boundary without structural
                   validation.

  journal-ordering The WAL discipline: on every mutation path, the journal
                   append must dominate the durable-state mutation (VRDT
                   put_active/put_deleted/apply_window/trim_below). A
                   mutation with no preceding journal event in its function
                   is a finding, unless it sits inside the journal *replay*
                   fold (where mutations are derived from the WAL itself) or
                   carries an explicit `// analyze[journal-ordering]: why`
                   waiver.

  wire-abi         Freezes the wire ABI: opcode/status/envelope-tag numeric
                   values, protocol constants and serialized field order are
                   extracted from protocol.hpp/status.hpp/envelopes.hpp/
                   protocol.cpp and compared against docs/wire_abi.lock.
                   Any drift fails; regenerating the lock with --update-lock
                   refuses value changes to *existing* entries unless
                   kProtocolVersion was bumped (additions are fine). See
                   docs/PROTOCOL.md for the update procedure.

Extraction backends (--backend):
  clang   `clang++ -Xclang -ast-dump=json -fsyntax-only` per TU, driven by
          build/compile_commands.json. Preferred when a clang is installed
          (CI installs clang-18).
  text    a deterministic lexical extractor producing the same fact schema;
          no toolchain dependency. The gate of record — byte-identical
          verdicts on any machine.
  auto    clang when available, else text (default).

Per-TU facts are cached under --cache-dir (default build/analyze_cache/),
keyed by the SHA-256 of the file contents + backend + tool version, so
re-analysis touches only edited files and a stale cache can never produce a
stale verdict.

Usage:
  worm_analyze.py [--repo DIR] [--backend auto|clang|text]
                  [--pass lock-order,wire-taint,journal-ordering,wire-abi]
                  [--files TU...] [--cache-dir DIR]
                  [--lock FILE] [--update-lock] [--verbose]

--files switches to fixture mode: the given files are the whole program
(cross-TU passes see exactly that set; wire-abi is skipped unless --lock is
also given, in which case the first .hpp files stand in for the real wire
headers via their basenames).

Exit status: 0 clean, 1 findings, 2 on usage/parse error.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import re
import shutil
import subprocess
import sys
from pathlib import Path

TOOL_VERSION = "1"

ALL_PASSES = ("lock-order", "wire-taint", "journal-ordering", "wire-abi")

GUARD_TYPES = ("MutexLock", "ExclusiveLock", "SharedLock")

# Lock expressions whose textual form hides the owning type: both sides of
# the write-pipeline ticket handshake name TicketState::mu through different
# handles. Checked against the normalized (whitespace-stripped, -> = .)
# mutex expression *suffix*.
LOCK_ALIASES = {
    "ticket.mu": "detail::TicketState::mu",
    "state_.mu": "detail::TicketState::mu",
}

# Durable-state mutations (receiver `vrdt_`) and the journal events that
# must dominate them.
MUTATION_METHODS = ("put_active", "put_deleted", "apply_window", "trim_below")
JOURNAL_FUNCS = (
    "journal_put_active", "journal_put_deleted", "journal_sig_update",
    "journal_apply_window", "journal_trim_below", "journal_queued_write",
)
JOURNAL_RECEIVER_METHODS = ("append", "rewrite")  # journal_.append / .rewrite
WAIVER_RE = re.compile(r"analyze\[journal-ordering\]\s*:\s*\S")

# wire-taint vocabulary.
TAINT_SOURCES = ("read_some",)
TAINT_PROPAGATORS = ("take_frame",)
TAINT_SANITIZERS = (
    "decode_request", "decode_response", "decode_read_outcome",
    "decode_write_request", "decode_lit_request", "msg_op_from_u8",
    "wire_status_from_u16", "check", "check_session_token",
    "verify_read", "verify_deletion_proof", "verify_sigbox",
    "verify_epoch_cert",
)
TAINT_SINK_RECEIVERS = ("session",)  # conn.session->..., session_->...
TAINT_SINK_METHODS = (
    "read", "write", "write_async", "try_write_async", "lit_hold",
    "lit_release",
)

# wire-abi surface: header -> enums of interest; constants matched by name.
ABI_ENUMS = {
    "src/server/protocol.hpp": ("MsgOp",),
    "src/worm/status.hpp": ("WireStatus", "ErrorCode"),
    "src/worm/envelopes.hpp": ("EnvelopeTag",),
}
ABI_CONSTANTS = {
    "src/server/protocol.hpp": (
        "kProtocolVersion", "kAttSnCurrent", "kAttEpochCert",
        "kMaxFrameBytes",
    ),
}
# Serialized field order: every ByteWriter call sequence in these encoder
# functions is part of the frozen ABI.
ABI_FIELD_ORDER_FUNCS = {
    "src/server/protocol.cpp": (
        "encode_request_body", "encode_response_body", "encode_read_outcome",
        "encode_write_request", "encode_lit_request", "encode_frame",
    ),
}
SERIAL_METHODS = (
    "u8", "u16", "u32", "u64", "i64", "boolean", "blob", "str", "raw",
    "patch_u32", "serialize",
)


class AnalyzeError(Exception):
    """Fatal analysis error (parse failure, bad invocation): exit 2."""


class Finding:
    def __init__(self, pass_name: str, path: str, line: int, message: str):
        self.pass_name = pass_name
        self.path = path
        self.line = line
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.pass_name}] {self.message}"


# --------------------------------------------------------------------------
# Shared lexical helpers
# --------------------------------------------------------------------------

def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                i += 2 if text[i] == "\\" else 1
            i += 1
            out.append('""' if quote == '"' else "' '")
        else:
            out.append(c)
            i += 1
    return "".join(out)


CALL_RE = re.compile(
    r"((?:[A-Za-z_]\w*\s*(?:\.|->|::)\s*)*)([A-Za-z_]\w*)\s*\(")
KEYWORDS = frozenset((
    "if", "while", "for", "switch", "return", "catch", "sizeof", "throw",
    "alignof", "decltype", "new", "delete", "case", "static_cast",
    "dynamic_cast", "const_cast", "reinterpret_cast", "static_assert",
    "noexcept", "defined", "assert", "alignas", "typeid", "co_await",
    "operator", "explicit", "requires",
))


def normalize_chain(chain: str) -> str:
    return chain.replace("->", ".").replace(" ", "").rstrip(".:")


# --------------------------------------------------------------------------
# Fact schema
#
# One TU produces {"functions": [FunctionFacts...]}. FunctionFacts:
#   qname   "WormStore::read" / "free_fn"
#   cls     enclosing class qualifier ("" for free functions)
#   line    definition line
#   events  ordered list of dicts, each with "kind", "line", "depth":
#     acquire   guard construction / assert_held: +"lock", +"guard"
#     release   explicit guard.unlock(): +"guard"
#     call      +"callee", +"recv" (normalized receiver chain), +"args"
#               (raw argument text), +"stmt" (whole statement text)
#     serial    ByteWriter call inside the function: +"method"
#     replay_begin / replay_end   journal-replay fold scope markers
#   requires  locks the function's declaration REQUIRES (seeds held set)
# --------------------------------------------------------------------------

GUARD_RE = re.compile(
    r"\b(MutexLock|ExclusiveLock|SharedLock)\s+(\w+)\s*[({]([^;{}]*?)[)}]")
ASSERT_HELD_RE = re.compile(
    r"([A-Za-z_][\w.>-]*?)\s*(?:\.|->)\s*assert_held(?:_shared)?\s*\(")
REQUIRES_RE = re.compile(
    r"\bREQUIRES(?:_SHARED)?\s*\(([^)]*)\)")
REPLAY_FOR_RE = re.compile(
    r"\bfor\s*\(.*\b(?:JournalRecord\b|replay\s*\.\s*records)")


class TextExtractor:
    """Deterministic lexical fact extractor. Parses the clang-format style
    this repo is written in; it does not aim to parse arbitrary C++."""

    CLASS_RE = re.compile(
        r"^(?:template\s*<.*>\s*)?"
        r"(?:class|struct|union)\s+(?:alignas\s*\([^)]*\)\s*)?"
        r"(?:\[\[[^\]]*\]\]\s*)?([\w:]+)", re.S)
    QUALIFIER_MACROS = frozenset((
        "REQUIRES", "REQUIRES_SHARED", "EXCLUDES", "ACQUIRE", "RELEASE",
        "ACQUIRE_SHARED", "RELEASE_SHARED", "RETURN_CAPABILITY",
        "noexcept", "throw", "decltype",
    ))

    def __init__(self, rel: str, text: str):
        self.rel = rel
        self.code = strip_comments_and_strings(text)
        self.raw_lines = text.split("\n")
        self.lines = self.code.split("\n")

    def extract(self) -> dict:
        self._check_balanced()
        functions = []
        for span in self._find_functions():
            fn = {
                "qname": span["qname"],
                "cls": span["cls"],
                "line": span["line"],
                "events": [],
                "requires": self._requires_locks(span["sig"], span["cls"]),
            }
            self._scan_body(fn, span)
            functions.append(fn)
        return {"functions": functions}

    def _find_functions(self) -> list[dict]:
        """Character scan pairing every brace, classifying each opened scope
        as namespace / class / function / other. Returns one span per
        outermost function body (lambdas and nested blocks stay inside it)."""
        code = self.code
        spans: list[dict] = []
        stack: list[dict] = []
        class_stack: list[str] = []
        in_fn = 0
        pending: list[str] = []
        pending_line = 1
        line = 1
        for i, c in enumerate(code):
            if c == "\n":
                line += 1
                if pending:
                    pending.append(" ")
                continue
            if c == "{":
                sig = "".join(pending).strip()
                kind, name = self._classify(sig, in_fn > 0)
                entry = {"kind": kind, "name": name, "line": pending_line}
                if kind == "fn":
                    if in_fn == 0:
                        cls = (name.rsplit("::", 1)[0] if "::" in name
                               else "::".join(class_stack))
                        entry.update({
                            "qname": (name if "::" in name
                                      else (f"{cls}::{name}" if cls
                                            else name)),
                            "cls": cls, "sig": sig,
                            "body_start_idx": i + 1,
                            "body_start_line": line,
                        })
                    in_fn += 1
                elif kind == "class":
                    class_stack.append(name)
                stack.append(entry)
                pending = []
                pending_line = line
                continue
            if c == "}":
                entry = stack.pop() if stack else {"kind": "other"}
                if entry["kind"] == "fn":
                    in_fn -= 1
                    if in_fn == 0:
                        entry["end_idx"] = i
                        entry["end_line"] = line
                        spans.append(entry)
                elif entry["kind"] == "class":
                    if class_stack:
                        class_stack.pop()
                pending = []
                pending_line = line
                continue
            if in_fn:
                continue
            if c == ";":
                pending = []
                pending_line = line
                continue
            if pending or not c.isspace():
                if not pending:
                    pending_line = line
                pending.append(c)
        return spans

    def _classify(self, sig: str, inside_fn: bool) -> tuple[str, str]:
        if inside_fn:
            return "other", ""
        if not sig or sig.endswith(("=", ",")):
            return "other", ""
        if re.match(r"^namespace\b|^extern\s*\"", sig):
            return "ns", ""
        if re.match(r"^(?:template\s*<.*>\s*)?enum\b", sig, re.S):
            return "other", ""
        m = self.CLASS_RE.match(sig)
        if m is not None:
            return "class", m.group(1)
        name = self._fn_name(sig)
        if name is not None:
            return "fn", name
        return "other", ""

    def _fn_name(self, sig: str) -> str | None:
        """Identifier before the first top-level paren group, when `sig`
        reads as a function definition header."""
        ident = None
        depth = 0
        angle = 0
        token = ""
        for c in sig:
            if c == "(" and angle == 0:
                if depth == 0:
                    if token:
                        ident = token
                        break
                    return None  # paren group with no name: not a function
                depth += 1
            elif c == ")" and angle == 0:
                depth = max(0, depth - 1)
            elif depth == 0:
                if c == "<":
                    angle += 1
                    token = ""
                elif c == ">":
                    angle = max(0, angle - 1)
                elif angle:
                    pass
                elif c.isalnum() or c in "_:~":
                    token += c
                else:
                    token = ""
        if ident is None:
            return None
        ident = ident.strip(":")
        last = ident.split("::")[-1].lstrip("~")
        if not last or last in KEYWORDS or ident in self.QUALIFIER_MACROS:
            return None
        if "operator" in ident:
            return None
        return ident

    def _scan_body(self, fn: dict, span: dict) -> None:
        body = self.code[span["body_start_idx"]:span["end_idx"]]
        depth = 1
        replay_stack: list[int] = []
        lineno = span["body_start_line"]
        for raw_chunk in body.split("\n"):
            end_depth = depth + raw_chunk.count("{") - raw_chunk.count("}")
            self._scan_line(fn, lineno, raw_chunk, end_depth, replay_stack)
            if REPLAY_FOR_RE.search(raw_chunk):
                replay_stack.append(end_depth)
                fn["events"].append(
                    {"kind": "replay_begin", "line": lineno,
                     "depth": end_depth})
            depth = end_depth
            while replay_stack and depth < replay_stack[-1]:
                replay_stack.pop()
                fn["events"].append(
                    {"kind": "replay_end", "line": lineno, "depth": depth})
            lineno += 1

    def _check_balanced(self) -> None:
        depth = 0
        for lineno, line in enumerate(self.lines, start=1):
            for ch in line:
                if ch == "{":
                    depth += 1
                elif ch == "}":
                    depth -= 1
                    if depth < 0:
                        raise AnalyzeError(
                            f"{self.rel}:{lineno}: unbalanced '}}' — the "
                            "file does not parse; fix the syntax error "
                            "before analyzing")
        if depth != 0:
            raise AnalyzeError(
                f"{self.rel}:{len(self.lines)}: {depth} unclosed '{{' at "
                "end of file — the file does not parse; fix the syntax "
                "error before analyzing")

    def _requires_locks(self, sig: str, cls: str) -> list[str]:
        locks = []
        for m in REQUIRES_RE.finditer(sig):
            for expr in m.group(1).split(","):
                lock = normalize_lock(normalize_chain(expr), cls)
                if lock:
                    locks.append(lock)
        return locks

    def _scan_line(self, fn: dict, lineno: int, line: str, depth: int,
                   replay_stack: list[int]) -> None:
        for m in GUARD_RE.finditer(line):
            kind, guard, arg = m.groups()
            lock = normalize_lock(normalize_chain(arg), fn["cls"])
            fn["events"].append(
                {"kind": "acquire", "line": lineno, "depth": depth,
                 "lock": lock, "guard": guard,
                 "shared": kind == "SharedLock"})
        for m in ASSERT_HELD_RE.finditer(line):
            lock = normalize_lock(normalize_chain(m.group(1)), fn["cls"])
            fn["events"].append(
                {"kind": "assert", "line": lineno, "depth": depth,
                 "lock": lock})
        for m in CALL_RE.finditer(line):
            recv, callee = m.groups()
            if callee in KEYWORDS or callee in GUARD_TYPES:
                continue
            recv_n = normalize_chain(recv)
            if callee in ("unlock", "lock") and recv_n:
                fn["events"].append(
                    {"kind": "release" if callee == "unlock" else "reacquire",
                     "line": lineno, "depth": depth, "guard": recv_n})
                continue
            if callee in SERIAL_METHODS and recv_n in ("w", "r"):
                fn["events"].append(
                    {"kind": "serial", "line": lineno, "depth": depth,
                     "method": callee})
            args = self._call_args(line, m.end() - 1)
            fn["events"].append(
                {"kind": "call", "line": lineno, "depth": depth,
                 "callee": callee, "recv": recv_n, "args": args,
                 "stmt": line.strip(),
                 "raw": (self.raw_lines[lineno - 1]
                         if lineno - 1 < len(self.raw_lines) else ""),
                 "in_replay": bool(replay_stack)})

    @staticmethod
    def _call_args(line: str, open_paren: int) -> str:
        depth = 0
        for i in range(open_paren, len(line)):
            if line[i] == "(":
                depth += 1
            elif line[i] == ")":
                depth -= 1
                if depth == 0:
                    return line[open_paren + 1:i]
        return line[open_paren + 1:]


def normalize_lock(expr: str, cls: str) -> str:
    """Canonical lock identity for a mutex expression inside class `cls`."""
    expr = expr.strip().removeprefix("this.").removeprefix("*")
    if not expr:
        return ""
    for suffix, alias in LOCK_ALIASES.items():
        if expr == suffix or expr.endswith("." + suffix):
            return alias
    last = expr.split(".")[-1]
    if "::" in last:
        return last  # already qualified (Class::static_mu)
    return f"{cls}::{last}" if cls else last


# --------------------------------------------------------------------------
# Clang AST backend: same fact schema, extracted from
# `clang++ -Xclang -ast-dump=json -fsyntax-only` output.
# --------------------------------------------------------------------------

class ClangAstExtractor:
    """Walks a clang JSON AST dump into the shared fact schema. The walker
    is deliberately structural (kind/name/inner) so it tolerates node-field
    drift between clang majors."""

    GUARD_QUALTYPES = tuple(GUARD_TYPES)

    def __init__(self, rel: str, ast: dict):
        self.rel = rel
        self.ast = ast

    def extract(self) -> dict:
        functions: list[dict] = []
        self._walk_decls(self.ast, [], functions)
        return {"functions": functions}

    def _walk_decls(self, node: dict, ctx: list[str],
                    functions: list[dict]) -> None:
        kind = node.get("kind", "")
        name = node.get("name", "")
        if kind in ("CXXMethodDecl", "FunctionDecl", "CXXConstructorDecl",
                    "CXXDestructorDecl"):
            body = next((c for c in node.get("inner", [])
                         if c.get("kind") == "CompoundStmt"), None)
            if body is not None:
                cls = "::".join(ctx) if ctx else ""
                qname = f"{cls}::{name}" if cls else name
                fn = {"qname": qname, "cls": cls,
                      "line": self._line(node), "events": [],
                      "requires": self._requires(node, cls)}
                self._walk_body(body, fn, 1, False)
                functions.append(fn)
            return
        child_ctx = ctx
        if kind in ("CXXRecordDecl", "NamespaceDecl") and name:
            if kind == "CXXRecordDecl":
                child_ctx = ctx + [name]
        for child in node.get("inner", []) or []:
            if isinstance(child, dict):
                self._walk_decls(child, child_ctx, functions)

    def _requires(self, node: dict, cls: str) -> list[str]:
        out = []
        for child in node.get("inner", []) or []:
            if child.get("kind", "").startswith("RequiresCapability"):
                for expr in child.get("inner", []) or []:
                    chain = self._name_chain(expr)
                    if chain:
                        out.append(normalize_lock(chain, cls))
        return out

    def _walk_body(self, node: dict, fn: dict, depth: int,
                   in_replay: bool) -> None:
        kind = node.get("kind", "")
        if kind == "VarDecl":
            qual = (node.get("type") or {}).get("qualType", "")
            if any(g in qual for g in self.GUARD_QUALTYPES):
                lock = ""
                ctor = self._find_kind(node, "CXXConstructExpr")
                if ctor is not None:
                    lock = self._name_chain(ctor)
                fn["events"].append(
                    {"kind": "acquire", "line": self._line(node),
                     "depth": depth,
                     "lock": normalize_lock(lock, fn["cls"]),
                     "guard": node.get("name"),
                     "shared": "SharedLock" in qual})
                return
        if kind in ("CXXMemberCallExpr", "CallExpr"):
            callee, recv = self._callee(node)
            if callee:
                if callee == "unlock" or (callee == "lock" and recv):
                    fn["events"].append(
                        {"kind": "release" if callee == "unlock"
                         else "reacquire",
                         "line": self._line(node), "depth": depth,
                         "guard": recv})
                elif callee.startswith("assert_held"):
                    fn["events"].append(
                        {"kind": "assert", "line": self._line(node),
                         "depth": depth,
                         "lock": normalize_lock(recv, fn["cls"])})
                else:
                    if callee in SERIAL_METHODS and recv in ("w", "r"):
                        fn["events"].append(
                            {"kind": "serial", "line": self._line(node),
                             "depth": depth, "method": callee})
                    fn["events"].append(
                        {"kind": "call", "line": self._line(node),
                         "depth": depth, "callee": callee, "recv": recv,
                         "args": self._args_text(node), "stmt": "",
                         "raw": "", "in_replay": in_replay})
        replay = in_replay
        if kind in ("CXXForRangeStmt", "ForStmt"):
            if "JournalRecord" in json.dumps(node.get("inner", [])[:3]):
                replay = True
                fn["events"].append({"kind": "replay_begin",
                                     "line": self._line(node),
                                     "depth": depth})
        next_depth = depth + 1 if kind == "CompoundStmt" else depth
        for child in node.get("inner", []) or []:
            if isinstance(child, dict):
                self._walk_body(child, fn, next_depth, replay)
        if kind == "CompoundStmt":
            for ev in reversed(fn["events"]):
                if ev["kind"] == "acquire" and ev["depth"] > depth:
                    pass  # scope exit is handled by depth in the passes
                break
        if replay and not in_replay:
            fn["events"].append({"kind": "replay_end",
                                 "line": self._line(node), "depth": depth})

    def _callee(self, node: dict) -> tuple[str, str]:
        inner = node.get("inner", []) or []
        if not inner:
            return "", ""
        head = inner[0]
        member = self._find_kind(head, "MemberExpr") \
            if head.get("kind") != "MemberExpr" else head
        if member is not None:
            name = member.get("name", "").lstrip("->").lstrip(".")
            recv = self._name_chain(member.get("inner", [{}])[0]
                                    if member.get("inner") else {})
            return name, recv
        ref = self._find_kind(head, "DeclRefExpr")
        if ref is not None:
            return (ref.get("referencedDecl", {}).get("name", ""), "")
        return "", ""

    def _name_chain(self, node: dict) -> str:
        parts: list[str] = []

        def rec(n: dict) -> None:
            if not isinstance(n, dict):
                return
            k = n.get("kind", "")
            if k == "MemberExpr":
                for c in n.get("inner", []) or []:
                    rec(c)
                parts.append(n.get("name", "").lstrip("->").lstrip("."))
            elif k == "DeclRefExpr":
                parts.append(n.get("referencedDecl", {}).get("name", ""))
            else:
                for c in n.get("inner", []) or []:
                    rec(c)
        rec(node)
        return ".".join(p for p in parts if p)

    def _find_kind(self, node: dict, kind: str) -> dict | None:
        if node.get("kind") == kind:
            return node
        for child in node.get("inner", []) or []:
            if isinstance(child, dict):
                found = self._find_kind(child, kind)
                if found is not None:
                    return found
        return None

    def _args_text(self, node: dict) -> str:
        names: list[str] = []
        for child in (node.get("inner", []) or [])[1:]:
            chain = self._name_chain(child)
            if chain:
                names.append(chain)
        return ", ".join(names)

    def _line(self, node: dict) -> int:
        loc = node.get("loc", {}) or {}
        if "line" in loc:
            return loc["line"]
        rng = node.get("range", {}) or {}
        return (rng.get("begin", {}) or {}).get("line", 0)


def find_clang() -> str | None:
    for name in ("clang++-18", "clang++", "clang-18", "clang"):
        path = shutil.which(name)
        if path is not None:
            return path
    return None


def clang_ast_dump(clang: str, tu: Path, extra_args: list[str],
                   repo: Path) -> dict:
    cmd = [clang, "-fsyntax-only", "-Xclang", "-ast-dump=json",
           "-I", str(repo / "src"), "-std=c++20", *extra_args, str(tu)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        tail = "\n".join(proc.stderr.strip().split("\n")[-8:])
        raise AnalyzeError(
            f"{tu}: clang failed to parse the TU (exit "
            f"{proc.returncode}); fix the syntax error before analyzing:\n"
            f"{tail}")
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        raise AnalyzeError(f"{tu}: unreadable clang AST JSON: {e}") from e


# --------------------------------------------------------------------------
# Fact cache
# --------------------------------------------------------------------------

class FactCache:
    def __init__(self, cache_dir: Path | None):
        self.dir = cache_dir
        self.hits = 0
        self.misses = 0
        if self.dir is not None:
            self.dir.mkdir(parents=True, exist_ok=True)

    def key(self, content: bytes, backend: str) -> str:
        h = hashlib.sha256()
        h.update(TOOL_VERSION.encode())
        h.update(backend.encode())
        h.update(content)
        return h.hexdigest()

    def load(self, key: str) -> dict | None:
        if self.dir is None:
            return None
        path = self.dir / f"{key}.json"
        if not path.is_file():
            return None
        try:
            facts = json.loads(path.read_text())
            self.hits += 1
            return facts
        except (json.JSONDecodeError, OSError):
            return None

    def store(self, key: str, facts: dict) -> None:
        if self.dir is None:
            return
        (self.dir / f"{key}.json").write_text(json.dumps(facts))


def extract_tu(rel: str, path: Path, backend: str, cache: FactCache,
               clang: str | None, repo: Path) -> dict:
    content = path.read_bytes()
    key = cache.key(content, backend)
    cached = cache.load(key)
    if cached is not None:
        return cached
    cache.misses += 1
    if backend == "clang":
        assert clang is not None
        facts = ClangAstExtractor(
            rel, clang_ast_dump(clang, path, [], repo)).extract()
    else:
        facts = TextExtractor(rel, content.decode(errors="replace")).extract()
    cache.store(key, facts)
    return facts


# --------------------------------------------------------------------------
# Program model: all TU facts + cross-TU call resolution
# --------------------------------------------------------------------------

class Program:
    def __init__(self):
        self.functions: dict[str, dict] = {}   # qname -> FunctionFacts
        self.by_name: dict[str, list[str]] = {}  # unqualified -> qnames
        self.files: dict[str, str] = {}        # qname -> rel path
        self.per_file: dict[str, list[dict]] = {}  # rel path -> FunctionFacts

    def add_tu(self, rel: str, facts: dict) -> None:
        self.per_file.setdefault(rel, []).extend(facts.get("functions", []))
        for fn in facts.get("functions", []):
            qname = fn["qname"]
            # Prefer the definition with events (a .cpp body) over an
            # inline redeclaration; first definition wins otherwise.
            if qname in self.functions and not fn["events"]:
                continue
            self.functions[qname] = fn
            self.files[qname] = rel
            self.by_name.setdefault(qname.split("::")[-1], []).append(qname)

    # Method names std containers share: matching one to an in-tree class
    # by name-uniqueness alone would wire e.g. by_sn_.insert() (a std::map)
    # to ReadCache::insert and invent call-graph edges, so these also need
    # the receiver to plausibly name the candidate's class.
    GENERIC_METHODS = frozenset((
        "insert", "erase", "clear", "find", "push_back", "emplace",
        "emplace_back", "pop_back", "reserve", "resize", "at", "count",
        "swap", "assign", "append", "get", "reset", "release", "store",
        "load", "put", "add", "remove", "merge", "contains",
    ))

    def resolve(self, caller: dict, callee: str, recv: str = "") -> str | None:
        """Callee name -> qualified definition, or None when external."""
        if callee in self.functions:
            return callee
        cls = caller.get("cls", "")
        if cls:
            cand = f"{cls}::{callee}"
            if cand in self.functions:
                return cand
        cands = self.by_name.get(callee, [])
        if len(cands) == 1:
            cand = cands[0]
            if callee in self.GENERIC_METHODS and "::" in cand:
                if not self._recv_matches(recv, cand.rsplit("::", 1)[0]):
                    return None
            return cand
        return None

    @staticmethod
    def _recv_matches(recv: str, cls: str) -> bool:
        tail = recv.split(".")[-1].strip("_").replace("_", "").lower()
        cname = cls.split("::")[-1].replace("_", "").lower()
        return len(tail) >= 4 and (tail in cname or cname in tail)


def build_program(tus: list[tuple[str, dict]]) -> Program:
    prog = Program()
    for rel, facts in tus:
        prog.add_tu(rel, facts)
    return prog


# --------------------------------------------------------------------------
# Pass 1: lock-order
# --------------------------------------------------------------------------

def held_sets_at_calls(fn: dict):
    """Yields (held:list[lock], event) for each call event, plus the list of
    direct (held, acquired, line) triples for acquire events."""
    # guards: list of [lock, depth, guard_name, live]
    live: list[list] = []
    acquires: list[tuple[tuple[str, ...], str, int]] = []
    calls: list[tuple[tuple[str, ...], dict]] = []
    for lock in fn.get("requires", []):
        live.append([lock, 0, None, True])
    for ev in fn["events"]:
        depth = ev.get("depth", 0)
        live = [g for g in live if g[1] <= depth]
        kind = ev["kind"]
        if kind == "acquire":
            held = tuple(g[0] for g in live if g[3])
            if ev.get("lock"):
                acquires.append((held, ev["lock"], ev["line"]))
                live.append([ev["lock"], depth, ev.get("guard"), True])
        elif kind == "assert":
            # assert_held documents a lock taken by the caller: it joins
            # the held set but is not an acquisition edge itself.
            if ev.get("lock") and ev["lock"] not in (
                    g[0] for g in live if g[3]):
                live.append([ev["lock"], depth, None, True])
        elif kind == "release":
            guard = ev.get("guard")
            for g in reversed(live):
                if g[2] == guard and g[3]:
                    g[3] = False
                    break
        elif kind == "reacquire":
            guard = ev.get("guard")
            for g in reversed(live):
                if g[2] == guard and not g[3]:
                    g[3] = True
                    break
        elif kind == "call":
            held = tuple(g[0] for g in live if g[3])
            calls.append((held, ev))
    return acquires, calls


def pass_lock_order(prog: Program) -> list[Finding]:
    findings: list[Finding] = []

    # Per-function direct facts.
    direct_acq: dict[str, list[tuple[tuple[str, ...], str, int]]] = {}
    fn_calls: dict[str, list[tuple[tuple[str, ...], dict]]] = {}
    for qname, fn in prog.functions.items():
        acquires, calls = held_sets_at_calls(fn)
        direct_acq[qname] = acquires
        fn_calls[qname] = calls

    # Effective acquire sets (locks a call into F may take), to fixpoint.
    eff: dict[str, set[str]] = {
        q: {lock for _, lock, _ in direct_acq[q]} for q in prog.functions}
    changed = True
    while changed:
        changed = False
        for qname, fn in prog.functions.items():
            for _, ev in fn_calls[qname]:
                callee = prog.resolve(fn, ev["callee"], ev.get("recv", ""))
                if callee is None:
                    continue
                extra = eff[callee] - eff[qname]
                if extra:
                    eff[qname] |= extra
                    changed = True

    # Edge set: lock A -> lock B ("B acquired while A held"), with witness.
    edges: dict[tuple[str, str], str] = {}

    def add_edge(a: str, b: str, where: str) -> None:
        if a != b:
            edges.setdefault((a, b), where)
        else:
            findings.append(Finding(
                "lock-order", where.split(":")[0],
                int(where.split(":")[1]),
                f"re-acquires {a} while already holding it (self-deadlock "
                "on a non-recursive mutex)"))

    for qname, fn in prog.functions.items():
        rel = prog.files[qname]
        for held, lock, line in direct_acq[qname]:
            for a in held:
                add_edge(a, lock, f"{rel}:{line}")
        for held, ev in fn_calls[qname]:
            if not held:
                continue
            callee = prog.resolve(fn, ev["callee"], ev.get("recv", ""))
            if callee is None:
                continue
            for b in eff[callee]:
                for a in held:
                    if a != b:
                        edges.setdefault(
                            (a, b),
                            f"{rel}:{ev['line']} (via call to {callee})")

    # Cycle detection over the lock graph.
    graph: dict[str, set[str]] = {}
    for (a, b) in edges:
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())

    index = {}
    low = {}
    on_stack = set()
    stack: list[str] = []
    counter = [0]
    sccs: list[list[str]] = []

    def strongconnect(v: str) -> None:
        work = [(v, iter(sorted(graph[v])))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(graph[w]))))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                sccs.append(scc)

    for v in sorted(graph):
        if v not in index:
            strongconnect(v)

    for scc in sccs:
        if len(scc) < 2:
            continue
        members = sorted(scc)
        witness = []
        for a in members:
            for b in members:
                if (a, b) in edges:
                    witness.append(f"  {a} -> {b} at {edges[(a, b)]}")
        first = edges[next((a, b) for a in members for b in members
                           if (a, b) in edges)]
        findings.append(Finding(
            "lock-order", first.split(":")[0],
            int(first.split(":")[1].split(" ")[0]),
            "lock-order cycle — these locks are acquired in inconsistent "
            "order and can deadlock:\n" + "\n".join(witness)))
    return findings


# --------------------------------------------------------------------------
# Pass 2: wire-taint
# --------------------------------------------------------------------------

IDENT_RE = re.compile(r"[A-Za-z_][\w.]*(?:->[\w.]+)*")
ASSIGN_RE = re.compile(
    r"^\s*(?:[\w:<>,&*\s]+?\s+)?([A-Za-z_][\w.>-]*)\s*=\s*(.*)$")


def taint_scope(rel: str, fixture_mode: bool) -> bool:
    return fixture_mode or rel.startswith("src/server/")


def expr_idents(expr: str) -> set[str]:
    return {normalize_chain(m.group(0))
            for m in IDENT_RE.finditer(expr.replace("->", "."))}


def pass_wire_taint(prog: Program, fixture_mode: bool) -> list[Finding]:
    findings: list[Finding] = []

    # Function summaries: parameter indices that reach a sink unsanitized.
    # Parameters are matched positionally by scanning the definition line's
    # parameter names out of the raw signature is unreliable in text mode,
    # so summaries key on parameter *names* found in the body instead:
    # callers mark the callee risky if any of its named "risky params" is
    # fed a tainted argument. Seed: functions that pass a param-named token
    # straight into a sink. Iterate to fixpoint through callees.
    risky_params: dict[str, set[str]] = {q: set() for q in prog.functions}

    def sink_call(ev: dict) -> bool:
        recv_last = ev["recv"].split(".")[-1] if ev["recv"] else ""
        return (ev["callee"] in TAINT_SINK_METHODS
                and recv_last in TAINT_SINK_RECEIVERS)

    def scan_function(qname: str, fn: dict, taint_seed: set[str],
                      report: bool) -> set[str]:
        """Propagates taint through one function body. Returns the set of
        seed names that reached a sink. Reports findings when `report`."""
        rel = prog.files[qname]
        tainted: set[str] = set(taint_seed)
        reached: set[str] = set()
        for ev in fn["events"]:
            if ev["kind"] != "call":
                continue
            args = ev.get("args", "")
            arg_ids = expr_idents(args)
            stmt = ev.get("stmt", "") or ""
            # Source: read_some(sock, buf, n) taints buf.
            if ev["callee"] in TAINT_SOURCES:
                parts = [normalize_chain(a) for a in args.split(",")]
                if len(parts) >= 2:
                    tainted.add(parts[1])
                continue
            # Sanitizer call: its result is clean; an assignment from it
            # does not taint the lhs.
            sanitized = ev["callee"] in TAINT_SANITIZERS
            hit = {t for t in tainted
                   if any(i == t or i.startswith(t + ".") for i in arg_ids)}
            if sink_call(ev) and hit:
                reached |= hit & taint_seed
                if report:
                    findings.append(Finding(
                        "wire-taint", rel, ev["line"],
                        f"untrusted bytes ({', '.join(sorted(hit))}) reach "
                        f"session operation {ev['callee']}() without "
                        "passing a protocol:: strict decoder or verifier — "
                        "wire input must be decoded before it can touch "
                        "the store"))
                continue
            # Cross-TU: feeding a tainted arg into a callee whose matching
            # work reaches a sink.
            callee_q = prog.resolve(fn, ev["callee"], ev.get("recv", ""))
            if callee_q is not None and hit and not sanitized:
                if risky_params[callee_q]:
                    reached |= hit & taint_seed
                    if report:
                        findings.append(Finding(
                            "wire-taint", rel, ev["line"],
                            f"untrusted bytes ({', '.join(sorted(hit))}) "
                            f"flow into {ev['callee']}(), which passes "
                            "them to a session/store sink without "
                            "decoding"))
            # Assignment propagation from the raw statement text.
            m = ASSIGN_RE.match(stmt)
            if m is not None:
                lhs = normalize_chain(m.group(1))
                rhs_ids = expr_idents(m.group(2))
                rhs_tainted = any(
                    any(i == t or i.startswith(t + ".") for i in rhs_ids)
                    for t in tainted)
                if sanitized:
                    tainted.discard(lhs)
                elif rhs_tainted and (
                        ev["callee"] in TAINT_PROPAGATORS
                        or prog.resolve(fn, ev["callee"], ev.get("recv", "")) is None
                        or not risky_params.get(
                            prog.resolve(fn, ev["callee"], ev.get("recv", "")) or "", set())):
                    if ev["callee"] in TAINT_PROPAGATORS or rhs_tainted:
                        tainted.add(lhs)
        return reached

    # Fixpoint over risky-param summaries: seed each function with every
    # plausible parameter-like name it uses before defining.
    scoped = {q: fn for q, fn in prog.functions.items()
              if taint_scope(prog.files[q], fixture_mode)}
    changed = True
    rounds = 0
    while changed and rounds < 10:
        changed = False
        rounds += 1
        for qname, fn in scoped.items():
            # Candidate param names: identifiers used in sink/callee args
            # that are never assigned beforehand — approximated by seeding
            # each candidate and seeing whether it reaches a sink.
            candidates = set()
            for ev in fn["events"]:
                if ev["kind"] == "call" and (
                        sink_call(ev)
                        or prog.resolve(fn, ev["callee"], ev.get("recv", "")) is not None):
                    candidates |= {i.split(".")[0]
                                   for i in expr_idents(ev.get("args", ""))}
            for cand in sorted(candidates):
                if cand in risky_params[qname]:
                    continue
                if scan_function(qname, fn, {cand}, report=False):
                    risky_params[qname].add(cand)
                    changed = True

    # Final reporting run: taint starts only at real net-read sources.
    for qname, fn in scoped.items():
        scan_function(qname, fn, set(), report=True)
    return findings


# --------------------------------------------------------------------------
# Pass 3: journal-ordering
# --------------------------------------------------------------------------

# Which journal appends can cover which mutation.
JOURNAL_COVERS = {
    "put_active": ("journal_put_active", "journal_queued_write"),
    "put_deleted": ("journal_put_deleted",),
    "apply_window": ("journal_apply_window",),
    "trim_below": ("journal_trim_below",),
}
# Intent-record helpers and raw journal appends cover any mutation kind:
# they put a durable record ahead of whatever follows.
JOURNAL_GENERIC = ("sequenced", "sequenced_group")


def pass_journal_ordering(prog: Program) -> list[Finding]:
    """Scope-based dominance approximation: a journal append covers every
    later matching mutation until the scope it appeared in closes. A journal
    inside a branch therefore does NOT bless mutations after the branch —
    it didn't necessarily execute on their path."""
    findings: list[Finding] = []
    for qname, fn in prog.functions.items():
        rel = prog.files[qname]
        credits: list[tuple[str, int]] = []  # (journal name | "*", depth)
        for ev in fn["events"]:
            if ev["kind"] != "call":
                continue
            depth = ev.get("depth", 0)
            credits = [c for c in credits if c[1] <= depth]
            callee = ev["callee"]
            recv_last = ev["recv"].split(".")[-1] if ev["recv"] else ""
            if callee in JOURNAL_FUNCS:
                credits.append((callee, depth))
                continue
            if callee in JOURNAL_GENERIC or (
                    recv_last == "journal_"
                    and callee in JOURNAL_RECEIVER_METHODS):
                credits.append(("*", depth))
                continue
            if recv_last == "vrdt_" and callee in MUTATION_METHODS:
                if ev.get("in_replay"):
                    continue  # replay fold: the WAL is the source
                if WAIVER_RE.search(ev.get("raw", "")):
                    continue
                ok = any(name == "*" or name in JOURNAL_COVERS[callee]
                         for name, _ in credits)
                if not ok:
                    findings.append(Finding(
                        "journal-ordering", rel, ev["line"],
                        f"durable-state mutation vrdt_.{callee}() with no "
                        "dominating journal append on this path — the WAL "
                        "must record every mutation before it is applied "
                        "(a crash here loses or forks state). Journal "
                        "first, or waive with `// analyze[journal-"
                        "ordering]: <reason>`"))
    return findings


# --------------------------------------------------------------------------
# Pass 4: wire-abi
# --------------------------------------------------------------------------

ENUM_RE = re.compile(
    r"enum\s+class\s+(\w+)\s*(?::\s*[\w:\s]+?)?\{(.*?)\}", re.S)
ENUM_ENTRY_RE = re.compile(r"(\w+)\s*(?:=\s*([^,}]+))?\s*(?:,|$)")
CONST_RE = re.compile(
    r"constexpr\s+[\w:<>\s]+?\b(k\w+)\s*=\s*([^;]+);")


def _eval_value(expr: str) -> int:
    expr = expr.strip()
    m = re.match(r"^(\d+)u?\s*<<\s*(\d+)u?$", expr)
    if m:
        return int(m.group(1)) << int(m.group(2))
    m = re.match(r"^(\d+)u?$", expr)
    if m:
        return int(m.group(1))
    raise AnalyzeError(f"wire-abi: cannot evaluate constant `{expr}`")


def extract_abi(repo: Path, enum_map: dict, const_map: dict,
                field_map: dict, prog: Program | None) -> dict:
    abi: dict[str, dict] = {"enums": {}, "consts": {}, "fields": {},
                            "protocol_version": None}
    for rel, enums in enum_map.items():
        path = repo / rel
        if not path.is_file():
            raise AnalyzeError(f"wire-abi: missing wire header {rel}")
        code = strip_comments_and_strings(path.read_text())
        for m in ENUM_RE.finditer(code):
            name, body = m.groups()
            if name not in enums:
                continue
            entries = {}
            next_val = 0
            for em in ENUM_ENTRY_RE.finditer(body):
                ename, eval_ = em.groups()
                if not ename:
                    continue
                if eval_ is not None:
                    next_val = _eval_value(eval_)
                entries[ename] = next_val
                next_val += 1
            abi["enums"][name] = entries
    for rel, consts in const_map.items():
        path = repo / rel
        code = strip_comments_and_strings(path.read_text())
        for m in CONST_RE.finditer(code):
            cname, cval = m.groups()
            if cname in consts:
                abi["consts"][cname] = _eval_value(cval)
    abi["protocol_version"] = abi["consts"].get("kProtocolVersion")
    if prog is not None:
        for rel, funcs in field_map.items():
            for fname in funcs:
                fn = next(
                    (f for f in prog.per_file.get(rel, [])
                     if f["qname"].split("::")[-1] == fname), None)
                if fn is None:
                    raise AnalyzeError(
                        f"wire-abi: encoder {fname}() not found in {rel}; "
                        "update ABI_FIELD_ORDER_FUNCS")
                seq = [ev["method"] for ev in fn["events"]
                       if ev["kind"] == "serial"]
                abi["fields"][fname] = seq
    return abi


def abi_to_lines(abi: dict) -> list[str]:
    lines = [
        "# strongworm wire-ABI lock file. Machine-written; do not edit by",
        "# hand. Regenerate with:  python3 tools/worm_analyze.py",
        "#   --pass wire-abi --update-lock",
        "# Changing an existing value requires bumping kProtocolVersion",
        "# first (see docs/PROTOCOL.md, 'Wire-ABI freeze').",
        f"protocol_version {abi['protocol_version']}",
    ]
    for ename in sorted(abi["enums"]):
        for entry, val in sorted(abi["enums"][ename].items(),
                                 key=lambda kv: (kv[1], kv[0])):
            lines.append(f"enum {ename} {entry} {val}")
    for cname in sorted(abi["consts"]):
        lines.append(f"const {cname} {abi['consts'][cname]}")
    for fname in sorted(abi["fields"]):
        lines.append(f"fieldorder {fname} {' '.join(abi['fields'][fname])}")
    return lines


def parse_lock_file(text: str) -> dict:
    abi: dict = {"enums": {}, "consts": {}, "fields": {},
                 "protocol_version": None}
    for line in text.split("\n"):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if parts[0] == "protocol_version":
            abi["protocol_version"] = int(parts[1])
        elif parts[0] == "enum":
            abi["enums"].setdefault(parts[1], {})[parts[2]] = int(parts[3])
        elif parts[0] == "const":
            abi["consts"][parts[1]] = int(parts[2])
        elif parts[0] == "fieldorder":
            abi["fields"][parts[1]] = parts[2:]
    return abi


def diff_abi(locked: dict, current: dict) -> tuple[list[str], list[str]]:
    """Returns (breaking, additions): breaking = changed/removed existing
    entries; additions = new entries absent from the lock."""
    breaking: list[str] = []
    additions: list[str] = []
    for ename, entries in locked["enums"].items():
        cur = current["enums"].get(ename)
        if cur is None:
            breaking.append(f"enum {ename} removed")
            continue
        for entry, val in entries.items():
            if entry not in cur:
                breaking.append(f"enum {ename}::{entry} removed "
                                f"(was {val})")
            elif cur[entry] != val:
                breaking.append(f"enum {ename}::{entry} changed "
                                f"{val} -> {cur[entry]}")
    for ename, entries in current["enums"].items():
        locked_entries = locked["enums"].get(ename, {})
        for entry, val in entries.items():
            if entry not in locked_entries:
                additions.append(f"enum {ename}::{entry} = {val}")
    for cname, val in locked["consts"].items():
        if cname not in current["consts"]:
            breaking.append(f"const {cname} removed (was {val})")
        elif current["consts"][cname] != val:
            if cname == "kProtocolVersion":
                continue  # the sanctioned way to change the rest
            breaking.append(f"const {cname} changed "
                            f"{val} -> {current['consts'][cname]}")
    for cname, val in current["consts"].items():
        if cname not in locked["consts"]:
            additions.append(f"const {cname} = {val}")
    for fname, seq in locked["fields"].items():
        cur = current["fields"].get(fname)
        if cur is None:
            breaking.append(f"fieldorder {fname} removed")
        elif cur != seq:
            breaking.append(
                f"fieldorder {fname} changed: {' '.join(seq)} -> "
                f"{' '.join(cur)}")
    for fname, seq in current["fields"].items():
        if fname not in locked["fields"]:
            additions.append(f"fieldorder {fname} = {' '.join(seq)}")
    return breaking, additions


def pass_wire_abi(repo: Path, lock_path: Path, update: bool,
                  prog: Program | None) -> list[Finding]:
    current = extract_abi(repo, ABI_ENUMS, ABI_CONSTANTS,
                          ABI_FIELD_ORDER_FUNCS, prog)
    rel_lock = str(lock_path)
    if update:
        if lock_path.is_file():
            locked = parse_lock_file(lock_path.read_text())
            breaking, _ = diff_abi(locked, current)
            if breaking and current["protocol_version"] == \
                    locked["protocol_version"]:
                return [Finding(
                    "wire-abi", rel_lock, 0,
                    "refusing --update-lock: existing wire values changed "
                    "without a kProtocolVersion bump:\n  "
                    + "\n  ".join(breaking)
                    + "\nBump kProtocolVersion in src/server/protocol.hpp, "
                    "then re-run --update-lock")]
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        lock_path.write_text("\n".join(abi_to_lines(current)) + "\n")
        print(f"wire-abi: lock file written: {lock_path}")
        return []
    if not lock_path.is_file():
        return [Finding(
            "wire-abi", rel_lock, 0,
            "wire-ABI lock file is missing; generate it with "
            "--pass wire-abi --update-lock and commit it")]
    locked = parse_lock_file(lock_path.read_text())
    breaking, additions = diff_abi(locked, current)
    findings = []
    for b in breaking:
        findings.append(Finding(
            "wire-abi", rel_lock, 0,
            f"frozen wire ABI drifted: {b} — clients built against the "
            "locked ABI would misparse frames. Bump kProtocolVersion and "
            "regenerate the lock (--update-lock), or revert the change"))
    for a in additions:
        findings.append(Finding(
            "wire-abi", rel_lock, 0,
            f"wire surface gained `{a}` but docs/wire_abi.lock was not "
            "regenerated — run --pass wire-abi --update-lock and commit "
            "the lock"))
    return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def discover_tus(repo: Path) -> list[Path]:
    src = repo / "src"
    if not src.is_dir():
        raise AnalyzeError(f"{repo} has no src/ directory")
    return sorted(p for p in src.rglob("*")
                  if p.suffix in (".hpp", ".cpp", ".h", ".cc")
                  and "CMakeFiles" not in p.parts)


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        description=__doc__.split("\n", 1)[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--repo", type=Path,
                    default=Path(__file__).resolve().parent.parent)
    ap.add_argument("--backend", choices=("auto", "clang", "text"),
                    default="auto")
    ap.add_argument("--pass", dest="passes", default=",".join(ALL_PASSES),
                    help="comma-separated subset of: " + ", ".join(ALL_PASSES))
    ap.add_argument("--files", nargs="+", type=Path, default=None,
                    help="fixture mode: analyze exactly these TUs as the "
                         "whole program")
    ap.add_argument("--cache-dir", type=Path, default=None,
                    help="per-TU fact cache (default build/analyze_cache; "
                         "'none' disables)")
    ap.add_argument("--lock", type=Path, default=None,
                    help="wire-ABI lock file (default docs/wire_abi.lock)")
    ap.add_argument("--update-lock", action="store_true")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args(argv)

    passes = tuple(p.strip() for p in args.passes.split(",") if p.strip())
    for p in passes:
        if p not in ALL_PASSES:
            print(f"worm-analyze: unknown pass `{p}` (choose from: "
                  f"{', '.join(ALL_PASSES)})", file=sys.stderr)
            return 2

    repo = args.repo
    fixture_mode = args.files is not None
    backend = args.backend
    clang = find_clang() if backend in ("auto", "clang") else None
    if backend == "clang" and clang is None:
        print("worm-analyze: --backend=clang but no clang installed",
              file=sys.stderr)
        return 2
    if backend == "auto":
        backend = "clang" if clang is not None else "text"

    if args.cache_dir is None:
        cache_dir = None if fixture_mode else repo / "build" / "analyze_cache"
    elif str(args.cache_dir) == "none":
        cache_dir = None
    else:
        cache_dir = args.cache_dir
    cache = FactCache(cache_dir)

    try:
        if fixture_mode:
            tu_paths = args.files
            for p in tu_paths:
                if not p.is_file():
                    print(f"worm-analyze: no such file: {p}",
                          file=sys.stderr)
                    return 2
        else:
            tu_paths = discover_tus(repo)

        tus: list[tuple[str, dict]] = []
        for path in tu_paths:
            rel = (path.relative_to(repo).as_posix()
                   if not fixture_mode and path.is_relative_to(repo)
                   else path.name if fixture_mode
                   else path.as_posix())
            tus.append((rel, extract_tu(rel, path, backend, cache, clang,
                                        repo)))
        prog = build_program(tus)

        findings: list[Finding] = []
        if "lock-order" in passes:
            findings.extend(pass_lock_order(prog))
        if "wire-taint" in passes:
            findings.extend(pass_wire_taint(prog, fixture_mode))
        if "journal-ordering" in passes:
            findings.extend(pass_journal_ordering(prog))
        if "wire-abi" in passes and not fixture_mode:
            lock_path = args.lock or repo / "docs" / "wire_abi.lock"
            findings.extend(
                pass_wire_abi(repo, lock_path, args.update_lock, prog))
    except AnalyzeError as e:
        print(f"worm-analyze: error: {e}", file=sys.stderr)
        return 2

    if args.verbose:
        print(f"worm-analyze: backend={backend} tus={len(tus)} "
              f"functions={len(prog.functions)} cache_hits={cache.hits} "
              f"cache_misses={cache.misses}", file=sys.stderr)

    for f in findings:
        print(f)
    if findings:
        print(f"worm-analyze: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"worm-analyze: clean ({', '.join(passes)}; backend={backend})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
