#!/usr/bin/env python3
"""worm-lint: WORM-invariant lint for the strongworm tree.

The compiler-enforced discipline (clang thread-safety analysis, [[nodiscard]])
catches lock and dropped-result bugs *inside* one translation unit. This lint
enforces the architectural invariants that no single-TU analysis can see:

  scpu-isolation      The SCPU is the trust anchor; every host interaction
                      must cross the serialized mailbox/channel pipeline.
                      Nothing outside the allowlisted wrappers may include or
                      name the SCPU internals (scpu_device.hpp, key_cache.hpp).
                      scpu/cost_model.hpp is a public parameter block and is
                      exempt.

  wall-clock          All time comes from the discrete-event SimClock so runs
                      are deterministic and the paper's latency model is the
                      only clock. std::chrono / time() / clock_gettime & co.
                      are banned in src/ outside the clock's own
                      implementation and the socket layer's real-I/O
                      deadline helpers (common/net). (bench/ and tests/ live
                      outside src/ and may time real execution.)

  dropped-result      Calling a fallible crypto/verify/write API as a bare
                      statement discards the verdict or the only handle to
                      the data. The compiler enforces this per-TU via
                      [[nodiscard]]; the lint (a) catches bare-statement
                      calls lexically so the rule holds even for code paths
                      compiled without -Werror, and (b) meta-checks that the
                      listed APIs still carry [[nodiscard]] in their headers
                      so the compiler gate cannot silently rot.

  raw-mutex           Bare std::mutex / std::shared_mutex / lock guards are
                      invisible to thread-safety analysis. src/ must use the
                      annotated wrappers from common/annotations.hpp (which
                      is itself the one allowed definition site).
                      std::condition_variable_any and std::once_flag /
                      std::call_once are allowed: they compose with the
                      annotated wrappers.

  blocking-under-state-mu
                      The write pipeline's committer needs state_mu_ to make
                      progress, so blocking on the pipeline while holding the
                      store lock (ticket .get(), drain_writes(), pipeline
                      submit()/drain()/shutdown_drop()) is a deadlock waiting
                      for its schedule. Inside a scope that constructed a
                      MutexLock/ExclusiveLock/SharedLock on state_mu_, those
                      calls are banned; non-blocking pokes are fine.

  server-store-isolation
                      The network front-end (src/server/) and the cluster
                      layer (src/cluster/) serve mutually distrusting
                      principals and must route every store operation through
                      the session layer (worm/session.hpp), where the
                      principal and freshness watermark live. Naming
                      WormStore or including worm/worm_store.hpp from either
                      scope bypasses that choke point.

  fault-bypass        Fault points are declared only via the
                      WORM_FAULT_POINT(injector, "site") macro, which is
                      null-safe and keeps the complete fault surface
                      greppable. Calling FaultInjector::evaluate_site()
                      directly anywhere in src/ outside common/fault.{hpp,cpp}
                      (the injector itself plus the macro's definition site)
                      hides an injection site from that inventory.

  include-cycle       Project-relative #include edges inside src/ must form a
                      DAG. A header cycle compiles today only by accident of
                      guard ordering, breaks the moment someone reorders
                      includes, and — because worm-analyze derives cross-TU
                      facts from per-file scans — would let a fact silently
                      depend on scan order. Each strongly-connected component
                      of the include graph is reported once, with the cycle
                      spelled out.

  crypto-isolation    The raw crypto kernels — SHA-256 block compression
                      (process_block/process_blocks), the Montgomery limb
                      kernels (mont_mul_into/mont_sqr_into), and the global
                      backend override (force_backend) — are implementation
                      detail of src/crypto/. Code elsewhere in src/ must use
                      the public Sha256 / ChainedHash / MontgomeryCtx APIs so
                      runtime backend dispatch and the device cost model stay
                      centralized (bench/ and tests/ live outside src/ and
                      may pin backends for A/B measurement).

Usage:
  worm_lint.py [--repo DIR] [--compile-commands FILE] [--as-src FILE...]

Default mode scans DIR/src (headers and sources). When a
compile_commands.json is present (DIR/build/compile_commands.json, or the
path given with --compile-commands) the lint cross-checks it: every src/
translation unit the build knows about must be covered by the scan, so a
source added to the build but hidden from the lint is itself a finding.

--as-src treats the given files as if they lived under src/ (fixture mode:
tests/lint_fixtures/ feeds known-bad snippets through the same rules). The
[[nodiscard]] meta-check is skipped in fixture mode since it inspects the
real headers, not the fixture.

Exit status: 0 when clean, 1 when any finding is reported, 2 on usage error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

# --- rule configuration ------------------------------------------------------

SCPU_INTERNAL_HEADERS = ("scpu/scpu_device.hpp", "scpu/key_cache.hpp")
SCPU_INTERNAL_SYMBOLS = ("ScpuDevice", "KeyCache")
# Files allowed to touch SCPU internals:
#   src/scpu/**            the SCPU implementation itself
#   src/worm/firmware.*    the firmware wrapper that *is* the SCPU side of
#                          the mailbox boundary
#   src/baseline/**        the non-WORM Merkle baseline deliberately talks to
#                          the coprocessor directly; it exists to measure what
#                          the mailbox discipline costs (documented exception)
SCPU_ALLOWLIST = re.compile(r"^src/(scpu/|worm/firmware\.|baseline/)")

WALL_CLOCK_PATTERN = re.compile(
    r"std::chrono\b|[^\w.]gettimeofday\s*\(|[^\w.]clock_gettime\s*\(|"
    r"[^\w.]time\s*\(\s*(?:NULL|nullptr|0)?\s*\)|[^\w.]localtime\s*\(|"
    r"[^\w.]gmtime\s*\(|steady_clock\b|system_clock\b|high_resolution_clock\b"
)
# The clock itself, the Duration/SimTime value types it hands out, and the
# socket layer: real networking needs real kernel time for poll timeouts and
# I/O deadlines (net.hpp documents the accommodation — now_real()/sleep_real()
# never feed simulation logic).
WALL_CLOCK_ALLOWLIST = re.compile(
    r"^src/common/(sim_clock\.(hpp|cpp)|time\.hpp|net\.cpp)$")

# Fallible APIs whose result must never be dropped. Each entry is
# (method name, header that must declare it [[nodiscard]]). The name list
# feeds the bare-statement scan; the header list feeds the meta-check.
FALLIBLE_APIS = [
    ("rsa_verify", "src/crypto/rsa.hpp"),
    ("verify_read", "src/worm/client_verifier.hpp"),
    ("verify_deletion_proof", "src/worm/client_verifier.hpp"),
    ("verify_sigbox", "src/worm/client_verifier.hpp"),
    ("write_batch", "src/worm/worm_store.hpp"),
    ("read_many", "src/worm/worm_store.hpp"),
    ("write_async", "src/worm/worm_store.hpp"),
    ("try_write_async", "src/worm/worm_store.hpp"),
    ("resolve", "src/cluster/shard_map.hpp"),
]

# A bare statement that begins with an (optionally qualified) call to one of
# the fallible APIs: `rsa_verify(...)`, `store.write_batch(...)`,
# `verifier->verify_read(...)`. Assignments, returns, conditions and explicit
# `(void)` discards all fail this match because the line starts differently;
# continuation lines (`bool ok =` on the previous line) are excluded by the
# statement-boundary check in lint_file.
_FALLIBLE_NAMES = "|".join(name for name, _ in FALLIBLE_APIS)
DROPPED_CALL_PATTERN = re.compile(
    r"^\s*(?:[A-Za-z_]\w*(?:\[\w+\])?\s*(?:\.|->|::)\s*)*(?:%s)\s*\("
    % _FALLIBLE_NAMES
)
# Characters that can precede the start of a statement. `)` admits the
# brace-less `if (cond)\n  rsa_verify(...);` body, which is still a drop.
_STATEMENT_BOUNDARY = ";{}):"

RAW_MUTEX_PATTERN = re.compile(
    r"std::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"shared_timed_mutex|condition_variable|lock_guard|unique_lock|"
    r"shared_lock|scoped_lock)\b"
)
RAW_MUTEX_ALLOWLIST = re.compile(r"^src/common/annotations\.hpp$")

# A scoped guard taking the store lock: `common::ExclusiveLock lk(state_mu_)`
# (paren or brace init). The guard's scope is tracked by brace depth; while
# one is live, blocking pipeline waits are banned — the committer thread
# needs state_mu_ to retire admissions, so waiting on it under the lock is a
# deadlock. `poke()` and `unsettled()` are non-blocking and stay legal.
STATE_LOCK_PATTERN = re.compile(
    r"\b(?:MutexLock|ExclusiveLock|SharedLock)\s+\w+\s*[({]\s*state_mu_\b"
)
BLOCKING_WAIT_PATTERN = re.compile(
    r"\bdrain_writes\s*\(|"
    r"(?:\.|->)\s*(?:get|submit|drain|shutdown_drop)\s*\("
)

# src/server/ and src/cluster/ may only reach the store through WormSession:
# the raw store type (or its header) appearing there bypasses the
# principal/freshness choke point. worm/session.hpp itself includes the store
# header — that is the one sanctioned crossing, and it lives outside both
# scopes. The cluster layer is held to the server's discipline because it is
# the same trust position: code that fronts stores on behalf of principals.
SERVER_ISOLATION_SCOPE = re.compile(r"^src/(?:server|cluster)/")
SERVER_STORE_PATTERN = re.compile(
    r"\bWormStore\b|#\s*include\s*[<\"]worm/worm_store\.hpp[>\"]"
)

FAULT_BYPASS_PATTERN = re.compile(r"\bevaluate_site\s*\(")
# The injector's own implementation and the WORM_FAULT_POINT macro definition.
FAULT_BYPASS_ALLOWLIST = re.compile(r"^src/common/fault\.(hpp|cpp)$")

# Project-relative include directive: `#include "worm/worm_store.hpp"`.
# System/<> includes never participate in src/-internal cycles. The path is a
# string literal, which strip_comments_and_strings blanks — so the directive
# is recognized on the stripped line (ruling out commented-out includes) and
# the path is then read back from the raw line.
PROJECT_INCLUDE_STRIPPED = re.compile(r'#\s*include\s*""')
PROJECT_INCLUDE_PATTERN = re.compile(r'#\s*include\s*"([^"]+)"')

# Raw crypto-kernel entry points; callable only from src/crypto/ itself.
CRYPTO_KERNEL_PATTERN = re.compile(
    r"\b(?:process_blocks?|mont_mul_into|mont_sqr_into|force_backend)\s*\(")
CRYPTO_KERNEL_ALLOWLIST = re.compile(r"^src/crypto/")


class Finding:
    def __init__(self, rule: str, path: str, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure.

    Rules must not fire on prose ('std::mutex' in a design comment) or on
    log strings. Newlines inside block comments are kept so reported line
    numbers stay true.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                i += 2 if text[i] == "\\" else 1
            i += 1
            out.append('""' if quote == '"' else "' '")
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _starts_statement(lines: list[str], lineno: int) -> bool:
    """True when 1-based line `lineno` begins a new statement.

    Scans back for the previous non-blank code character; a line whose
    predecessor ends mid-expression (`=`, `&&`, `(`, ...) is a continuation,
    not a bare-statement call.
    """
    for prev in range(lineno - 2, -1, -1):
        stripped = lines[prev].rstrip()
        if stripped:
            return stripped[-1] in _STATEMENT_BOUNDARY
    return True  # first code line of the file


def lint_file(rel: str, text: str) -> list[Finding]:
    findings: list[Finding] = []
    code = strip_comments_and_strings(text)
    lines = code.split("\n")

    scpu_exempt = bool(SCPU_ALLOWLIST.match(rel))
    server_scoped = bool(SERVER_ISOLATION_SCOPE.match(rel))
    clock_exempt = bool(WALL_CLOCK_ALLOWLIST.match(rel))
    mutex_exempt = bool(RAW_MUTEX_ALLOWLIST.match(rel))
    fault_exempt = bool(FAULT_BYPASS_ALLOWLIST.match(rel))
    crypto_exempt = bool(CRYPTO_KERNEL_ALLOWLIST.match(rel))

    # blocking-under-state-mu scope tracking: brace depth at which each live
    # state_mu_ guard was constructed; a guard dies when depth drops below it.
    depth = 0
    state_guards: list[int] = []

    for lineno, line in enumerate(lines, start=1):
        end_depth = depth + line.count("{") - line.count("}")
        if STATE_LOCK_PATTERN.search(line):
            state_guards.append(end_depth)
        elif state_guards and BLOCKING_WAIT_PATTERN.search(line):
            findings.append(Finding(
                "blocking-under-state-mu", rel, lineno,
                "blocking pipeline wait while holding state_mu_; the "
                "committer needs the store lock to make progress — release "
                "the guard before get()/drain()/submit()"))
        depth = end_depth
        while state_guards and depth < state_guards[-1]:
            state_guards.pop()
        if not scpu_exempt:
            for header in SCPU_INTERNAL_HEADERS:
                if re.search(r'#\s*include\s*[<"]%s[>"]' % re.escape(header), line):
                    findings.append(Finding(
                        "scpu-isolation", rel, lineno,
                        f"includes SCPU internal header {header}; host code "
                        "must go through the mailbox/channel pipeline"))
            for sym in SCPU_INTERNAL_SYMBOLS:
                if re.search(r"\b%s\b" % sym, line):
                    findings.append(Finding(
                        "scpu-isolation", rel, lineno,
                        f"names SCPU internal type {sym}; host code must go "
                        "through the mailbox/channel pipeline"))

        if not clock_exempt and WALL_CLOCK_PATTERN.search(line):
            findings.append(Finding(
                "wall-clock", rel, lineno,
                "wall-clock/chrono use outside SimClock; all src/ time must "
                "flow through the simulated clock"))

        if DROPPED_CALL_PATTERN.match(line) and _starts_statement(lines, lineno):
            findings.append(Finding(
                "dropped-result", rel, lineno,
                "result of a fallible crypto/verify/write API is discarded; "
                "consume it or cast to (void) with a justification"))

        if not mutex_exempt and RAW_MUTEX_PATTERN.search(line):
            findings.append(Finding(
                "raw-mutex", rel, lineno,
                "raw std synchronization primitive; use the annotated "
                "wrappers from common/annotations.hpp so thread-safety "
                "analysis can see the lock"))

        if server_scoped and SERVER_STORE_PATTERN.search(line):
            findings.append(Finding(
                "server-store-isolation", rel, lineno,
                "direct WormStore access from src/server/ or src/cluster/; "
                "the front-end must go through the session layer "
                "(worm/session.hpp) so every operation carries a principal "
                "and freshness state"))

        if not fault_exempt and FAULT_BYPASS_PATTERN.search(line):
            findings.append(Finding(
                "fault-bypass", rel, lineno,
                "direct evaluate_site() call; declare fault points with "
                "WORM_FAULT_POINT(injector, \"site\") so the fault surface "
                "stays null-safe and greppable"))

        if not crypto_exempt and CRYPTO_KERNEL_PATTERN.search(line):
            findings.append(Finding(
                "crypto-isolation", rel, lineno,
                "direct crypto kernel call (SHA-256 block function, "
                "Montgomery limb kernel, or backend override) outside "
                "src/crypto/; use the public Sha256/ChainedHash/"
                "MontgomeryCtx API so backend dispatch and cost accounting "
                "stay centralized"))

    return findings


def check_nodiscard_declarations(repo: Path) -> list[Finding]:
    """Meta-check: the fallible APIs must still be declared [[nodiscard]]."""
    findings: list[Finding] = []
    for name, header in FALLIBLE_APIS:
        path = repo / header
        if not path.is_file():
            findings.append(Finding(
                "dropped-result", header, 0,
                f"expected header declaring {name}() is missing"))
            continue
        code = strip_comments_and_strings(path.read_text())
        lines = code.split("\n")
        decl_re = re.compile(r"[\w>&:\]]\s+%s\s*\(" % re.escape(name))
        declared_at = [i for i, l in enumerate(lines) if decl_re.search(l)]
        if not declared_at:
            findings.append(Finding(
                "dropped-result", header, 0,
                f"could not find declaration of {name}(); update worm_lint's "
                "FALLIBLE_APIS map"))
            continue
        for i in declared_at:
            window = "\n".join(lines[max(0, i - 2): i + 1])
            if "[[nodiscard]]" not in window:
                findings.append(Finding(
                    "dropped-result", header, i + 1,
                    f"{name}() is fallible but not declared [[nodiscard]]"))
    return findings


def check_include_cycles(file_map: dict[str, str]) -> list[Finding]:
    """Whole-tree rule: the src/ project-include graph must be acyclic.

    file_map maps src/-relative paths to file text. Edges are the
    project-relative includes that resolve to another scanned file, so the
    rule sees exactly the tree (or fixture set) under lint. Each
    strongly-connected component with more than one member is reported once,
    anchored at its lexicographically-first file, with one concrete cycle
    spelled out.
    """
    findings: list[Finding] = []
    graph: dict[str, list[str]] = {}
    include_line: dict[tuple[str, str], int] = {}
    for rel, text in file_map.items():
        code = strip_comments_and_strings(text)
        raw_lines = text.split("\n")
        edges: list[str] = []
        for lineno, line in enumerate(code.split("\n"), start=1):
            if not PROJECT_INCLUDE_STRIPPED.search(line):
                continue
            m = PROJECT_INCLUDE_PATTERN.search(raw_lines[lineno - 1])
            if not m:
                continue
            target = "src/" + m.group(1)
            if target == rel:
                findings.append(Finding(
                    "include-cycle", rel, lineno, "file includes itself"))
            elif target in file_map and target not in edges:
                edges.append(target)
                include_line[(rel, target)] = lineno
        graph[rel] = edges

    # Iterative Tarjan: SCCs without recursion (the include graph is shallow,
    # but Python's default recursion limit is not a contract worth leaning on).
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    cycles: list[list[str]] = []

    def strongconnect(root: str) -> None:
        work = [(root, 0)]
        while work:
            node, ei = work[-1]
            if ei == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            edges = graph[node]
            while ei < len(edges):
                nxt = edges[ei]
                ei += 1
                if nxt not in index:
                    work[-1] = (node, ei)
                    work.append((nxt, 0))
                    recurse = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if recurse:
                continue
            work.pop()
            if low[node] == index[node]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                if len(comp) > 1:
                    cycles.append(comp)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])

    for rel in sorted(graph):
        if rel not in index:
            strongconnect(rel)

    for comp in cycles:
        members = set(comp)
        first = min(comp)
        # Walk in-component edges from the anchor until a node repeats; in an
        # SCC every member has such an edge, so this always closes a loop.
        chain = [first]
        node = first
        while True:
            node = next(t for t in graph[node] if t in members)
            chain.append(node)
            if chain.count(node) > 1:
                break
        findings.append(Finding(
            "include-cycle", first, include_line.get((chain[0], chain[1]), 0),
            "header include cycle: " + " -> ".join(chain) + "; break it with "
            "a forward declaration or by hoisting the shared types"))
    return findings


def discover_sources(repo: Path, compile_commands: Path | None) -> tuple[list[Path], list[Finding]]:
    findings: list[Finding] = []
    src = repo / "src"
    files = sorted(p for p in src.rglob("*")
                   if p.suffix in (".hpp", ".cpp", ".h", ".cc")
                   and "CMakeFiles" not in p.parts)

    cc = compile_commands
    if cc is None:
        candidate = repo / "build" / "compile_commands.json"
        if candidate.is_file():
            cc = candidate
    if cc is not None and cc.is_file():
        scanned = {p.resolve() for p in files}
        try:
            for entry in json.loads(cc.read_text()):
                tu = Path(entry["file"])
                if not tu.is_absolute():
                    tu = Path(entry["directory"]) / tu
                tu = tu.resolve()
                if repo.resolve() / "src" in tu.parents and tu not in scanned:
                    findings.append(Finding(
                        "coverage", str(tu), 0,
                        "translation unit is in compile_commands.json but "
                        "not covered by the lint scan"))
        except (json.JSONDecodeError, KeyError) as e:
            findings.append(Finding(
                "coverage", str(cc), 0, f"unreadable compile_commands.json: {e}"))
    return files, findings


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("--repo", type=Path, default=Path(__file__).resolve().parent.parent)
    ap.add_argument("--compile-commands", type=Path, default=None)
    ap.add_argument("--as-src", nargs="+", type=Path, default=None,
                    help="lint these files as if they lived under src/ "
                         "(fixture mode; skips the [[nodiscard]] meta-check)")
    args = ap.parse_args(argv)

    findings: list[Finding] = []
    file_map: dict[str, str] = {}
    if args.as_src:
        for path in args.as_src:
            if not path.is_file():
                print(f"worm-lint: no such file: {path}", file=sys.stderr)
                return 2
            # Fixtures keep their parent directory when it names a src/
            # subtree (tests/lint_fixtures/server/x.cpp lints as
            # src/server/x.cpp) so path-scoped rules apply to them.
            parent = path.parent.name
            rel = (f"src/{parent}/{path.name}"
                   if parent not in ("", "lint_fixtures") else
                   f"src/{path.name}")
            text = path.read_text()
            file_map[rel] = text
            findings.extend(lint_file(rel, text))
    else:
        repo = args.repo
        if not (repo / "src").is_dir():
            print(f"worm-lint: {repo} has no src/ directory", file=sys.stderr)
            return 2
        files, cov = discover_sources(repo, args.compile_commands)
        findings.extend(cov)
        for path in files:
            rel = path.relative_to(repo).as_posix()
            text = path.read_text()
            file_map[rel] = text
            findings.extend(lint_file(rel, text))
        findings.extend(check_nodiscard_declarations(repo))
    findings.extend(check_include_cycles(file_map))

    for f in findings:
        print(f)
    if findings:
        print(f"worm-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("worm-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
