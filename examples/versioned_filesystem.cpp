// WORM filesystem (the paper's §6 future work, built here): versioned
// write-once files over the record-level store. Shows version chains, a
// crash-and-remount index rebuild, and the namespace audit catching an
// insider hiding an incriminating file revision.
#include <cstdio>

#include "adversary/mallory.hpp"
#include "common/sim_clock.hpp"
#include "scpu/key_cache.hpp"
#include "scpu/scpu_device.hpp"
#include "storage/block_device.hpp"
#include "storage/record_store.hpp"
#include "worm/session.hpp"
#include "worm/firmware.hpp"
#include "worm/worm_fs.hpp"
#include "worm/worm_store.hpp"

using namespace worm;

int main() {
  std::printf("== Versioned WORM filesystem ==\n\n");

  common::SimClock clock;
  scpu::ScpuDevice device(clock, scpu::CostModel::ibm4764());
  core::Firmware firmware(device, core::FirmwareConfig{},
                          scpu::cached_rsa_key(0x1e6, 1024).public_key());
  storage::MemBlockDevice disk(4096, 2048, &clock);
  storage::RecordStore records(disk);
  core::WormStore store(clock, firmware, records, core::StoreConfig{});
  core::WormSession session(store, "auditor@firm.example", clock);
  core::ClientVerifier& verifier = session.verifier();
  core::WormFs fs(store);

  core::Attr attr;
  attr.retention = common::Duration::years(7);

  // --- an evolving audit workpaper -------------------------------------------
  fs.write_file("/audit/2026/workpaper.md",
                common::to_bytes("# Q2 audit\nfinding: none yet"), attr);
  fs.write_file("/audit/2026/workpaper.md",
                common::to_bytes("# Q2 audit\nfinding: revenue mismatch $2.3M"),
                attr);
  fs.write_file("/audit/2026/workpaper.md",
                common::to_bytes("# Q2 audit\nfinding: resolved (see memo 19)"),
                attr);
  fs.write_file("/audit/2026/memo-19.md",
                common::to_bytes("memo 19: reclassified deferred revenue"),
                attr);

  std::printf("files under /audit/2026/:\n");
  for (const auto& p : fs.list("/audit/2026/")) {
    std::printf("  %s (%zu versions)\n", p.c_str(), fs.versions(p).size());
  }

  auto latest = fs.read_file("/audit/2026/workpaper.md");
  std::printf("\nlatest workpaper (v%u):\n  %s\n",
              std::get<core::FsReadOk>(latest).header.version,
              common::to_string(std::get<core::FsReadOk>(latest).content)
                  .c_str());
  auto v2 = fs.read_file("/audit/2026/workpaper.md", 2);
  std::printf("historical v2 stays readable (write-once!):\n  %s\n",
              common::to_string(std::get<core::FsReadOk>(v2).content).c_str());

  // --- crash: the host loses its in-memory index -----------------------------
  std::printf("\n[host] crash; remounting the filesystem from the records "
              "alone...\n");
  core::WormFs remounted(store);
  remounted.rebuild_index();
  std::printf("remounted: %zu files recovered, workpaper has %zu versions\n",
              remounted.file_count(),
              remounted.versions("/audit/2026/workpaper.md").size());

  // --- audit: all clean -------------------------------------------------------
  clock.advance(common::Duration::minutes(3));  // heartbeat coverage
  core::FsAuditReport report = remounted.audit(verifier);
  std::printf("\nnamespace audit: %zu files, %zu versions, %s\n",
              report.files, report.versions,
              report.clean() ? "all chains intact" : "PROBLEMS FOUND");

  // --- the insider hides the incriminating v2 --------------------------------
  core::Sn v2_sn = remounted.versions("/audit/2026/workpaper.md")[1].sn;
  std::printf("\n[insider] hiding workpaper v2 (the $2.3M finding), "
              "SN %llu...\n", static_cast<unsigned long long>(v2_sn));
  adversary::hide_record(store, v2_sn);

  report = remounted.audit(verifier);
  std::printf("[auditor] namespace audit: %s\n",
              report.clean() ? "clean (BAD!)" : "version chain broken:");
  for (const auto& p : report.broken_chains) {
    std::printf("  %s — a predecessor version is missing without deletion "
                "evidence\n", p.c_str());
  }
  std::printf("\nconclusion: hash-chained version history makes hidden "
              "revisions detectable even though the namespace index itself "
              "is untrusted.\n");
  return 0;
}
