// Compliant migration: a 2008-era archive moves to new hardware without
// weakening its WORM assurances (§1's third requirement — retention periods
// outlive storage media). An insider has silently corrupted one record on
// the old store; the migration refuses it, and the source SCPU's signed
// manifest lets an auditor confirm exactly what moved.
#include <cstdio>

#include "adversary/mallory.hpp"
#include "common/sim_clock.hpp"
#include "scpu/key_cache.hpp"
#include "scpu/scpu_device.hpp"
#include "storage/block_device.hpp"
#include "storage/record_store.hpp"
#include "worm/session.hpp"
#include "worm/firmware.hpp"
#include "worm/migrator.hpp"
#include "worm/worm_store.hpp"

using namespace worm;

namespace {

struct Deployment {
  Deployment(common::SimClock& clk, std::uint64_t seed, std::uint64_t id)
      : device(clk, scpu::CostModel::ibm4764()),
        firmware(device,
                 [&] {
                   core::FirmwareConfig c;
                   c.seed = seed;
                   c.heartbeat_interval = common::Duration::hours(6);
                   c.sn_current_max_age = common::Duration::hours(12);
                   return c;
                 }(),
                 scpu::cached_rsa_key(0x1e6, 1024).public_key()),
        disk(4096, 2048, &clk),
        records(disk),
        store(clk, firmware, records,
              [&] {
                core::StoreConfig c;
                c.store_id = id;
                return c;
              }()) {}

  scpu::ScpuDevice device;
  core::Firmware firmware;
  storage::MemBlockDevice disk;
  storage::RecordStore records;
  core::WormStore store;
};

}  // namespace

int main() {
  std::printf("== Compliant migration: old array -> new array ==\n\n");

  common::SimClock clock;  // both machines share the data center's time
  Deployment old_array(clock, /*seed=*/0x01d, /*id=*/1);
  Deployment new_array(clock, /*seed=*/0x2e3, /*id=*/2);

  // --- years of operation on the old array ----------------------------------
  core::Attr attr;
  attr.retention = common::Duration::years(10);
  const int kRecords = 25;
  for (int i = 0; i < kRecords; ++i) {
    (void)old_array.store.write(
        {.payloads = {common::to_bytes("ledger entry " + std::to_string(i))},
         .attr = attr});
  }
  clock.advance(common::Duration::years(4));
  std::printf("old array: %d records, 4 years into their 10-year "
              "retention\n", kRecords);

  // An insider quietly corrupts one archived entry on the old platters.
  adversary::tamper_record_data(old_array.store, old_array.disk, 13);
  std::printf("[insider] record SN 13 silently corrupted on the old "
              "array\n\n");

  // --- migrate ----------------------------------------------------------------
  core::WormSession source_session(old_array.store, "migrator@firm", clock);
  core::MigrationReport report = core::Migrator::migrate(
      old_array.store, new_array.store, source_session.verifier());

  std::printf("migration: %zu migrated, %zu refused\n", report.migrated(),
              report.rejected.size());
  for (core::Sn sn : report.rejected) {
    std::printf("  refused SN %llu: failed source verification (corrupted "
                "in place)\n", static_cast<unsigned long long>(sn));
  }

  // --- auditor checks the signed manifest ------------------------------------
  bool manifest_ok =
      core::Migrator::verify_report(report, old_array.store.anchors());
  std::printf("source-SCPU manifest attestation verifies: %s\n",
              manifest_ok ? "yes" : "NO");

  // --- destination serves authentic reads; retention clock carried over ------
  core::WormSession dest_session(new_array.store, "auditor@firm", clock);
  std::size_t authentic = 0;
  for (const auto& e : report.entries) {
    if (dest_session.verified_read(e.dest_sn).verdict.verdict ==
        core::Verdict::kAuthentic) {
      ++authentic;
    }
  }
  std::printf("new array: %zu/%zu migrated records verify under the NEW "
              "device's certificates\n", authentic, report.migrated());

  clock.advance(common::Duration::years(7));  // past the original expiry
  core::Sn probe = report.entries.front().dest_sn;
  core::Outcome out = dest_session.verified_read(probe).verdict;
  std::printf("11 years after original write (1 past retention): SN %llu is "
              "%s — the retention clock survived the move.\n",
              static_cast<unsigned long long>(probe),
              core::to_string(out.verdict));
  return 0;
}
