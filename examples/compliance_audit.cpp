// Full compliance audit: a regulator walks the ENTIRE serial-number space of
// a store and demands verified data or verified deletion evidence for every
// single SN — the complete-audit capability that consecutive serial numbers
// buy (§4.2.2). Shown twice: on an honest store, and after an insider has
// mounted every attack in the book.
#include <cstdio>

#include "adversary/mallory.hpp"
#include "common/sim_clock.hpp"
#include "scpu/key_cache.hpp"
#include "scpu/scpu_device.hpp"
#include "storage/block_device.hpp"
#include "storage/record_store.hpp"
#include "worm/auditor.hpp"
#include "worm/session.hpp"
#include "worm/firmware.hpp"
#include "worm/worm_store.hpp"

using namespace worm;

int main() {
  std::printf("== Whole-store compliance audit ==\n\n");

  common::SimClock clock;
  scpu::ScpuDevice device(clock, scpu::CostModel::ibm4764());
  core::Firmware firmware(device, core::FirmwareConfig{},
                          scpu::cached_rsa_key(0x1e6, 1024).public_key());
  storage::MemBlockDevice disk(4096, 2048, &clock);
  storage::RecordStore records(disk);
  core::WormStore store(clock, firmware, records, core::StoreConfig{});
  core::WormSession audit(store, "regulator@finra", clock);
  core::ClientVerifier& regulator = audit.verifier();

  // A year of operation: long-lived contracts, short-lived session logs.
  core::Attr contracts;
  contracts.retention = common::Duration::years(7);
  core::Attr logs;
  logs.retention = common::Duration::days(30);
  for (int month = 0; month < 12; ++month) {
    for (int i = 0; i < 3; ++i) {
      (void)store.write(
          {.payloads = {common::to_bytes("contract m" + std::to_string(month) +
                                         "#" + std::to_string(i))},
           .attr = contracts});
    }
    for (int i = 0; i < 5; ++i) {
      (void)store.write(
          {.payloads = {common::to_bytes("session log")}, .attr = logs});
    }
    clock.advance(common::Duration::days(30));
    while (store.pump_idle()) {
    }
  }

  core::AuditReport report = core::Auditor::audit_store(store, regulator);
  std::printf("year-end audit (honest store):\n  %s\n\n",
              core::Auditor::summarize(report).c_str());

  // --- the insider goes to work ----------------------------------------------
  crypto::Drbg rng(0xbad);
  std::printf("[insider] tampering with one contract, hiding another,\n"
              "          forging a deletion proof for a third...\n\n");
  adversary::tamper_record_data(store, disk, 1);
  adversary::hide_record(store, 9);
  adversary::forge_deletion(store, 17, rng);

  report = core::Auditor::audit_store(store, regulator);
  std::printf("post-incident audit:\n  %s\n\n",
              core::Auditor::summarize(report).c_str());
  std::printf("every attacked serial number is individually identified; "
              "nothing was lost silently.\n");
  return 0;
}
