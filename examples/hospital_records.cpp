// HIPAA hospital archive: 20-year retention, a malpractice litigation hold
// that outlives retention, hold release by the issuing authority, and
// policy-driven secure shredding — decades of simulated time in
// milliseconds of wall time.
#include <cstdio>

#include "common/sim_clock.hpp"
#include "crypto/rsa.hpp"
#include "scpu/key_cache.hpp"
#include "scpu/scpu_device.hpp"
#include "storage/block_device.hpp"
#include "storage/record_store.hpp"
#include "worm/session.hpp"
#include "worm/envelopes.hpp"
#include "worm/firmware.hpp"
#include "worm/worm_store.hpp"

using namespace worm;

int main() {
  std::printf("== Hospital records archive (HIPAA, 20-year retention) ==\n\n");

  common::SimClock clock;
  scpu::ScpuDevice device(clock, scpu::CostModel::ibm4764());

  // Long heartbeat interval: this example fast-forwards 21 years, and a
  // 2-minute heartbeat would mean ~5.5 million signatures along the way.
  core::FirmwareConfig fw_cfg;
  fw_cfg.heartbeat_interval = common::Duration::days(1);
  fw_cfg.sn_current_max_age = common::Duration::days(2);

  const crypto::RsaPrivateKey& court = scpu::cached_rsa_key(0xc0027, 1024);
  core::Firmware firmware(device, fw_cfg, court.public_key());
  storage::MemBlockDevice disk(4096, 1024, &clock);
  storage::RecordStore records(disk);
  core::WormStore store(clock, firmware, records, core::StoreConfig{});
  core::WormSession counsel(store, "counsel@hospital", clock);

  auto show = [&](core::Sn sn, const char* when) {
    core::Outcome out = counsel.verified_read(sn).verdict;
    std::printf("  [%-22s] SN %llu: %-22s %s\n", when,
                static_cast<unsigned long long>(sn),
                core::to_string(out.verdict), out.detail.c_str());
  };

  // --- admit two patients ----------------------------------------------------
  core::Attr hipaa;
  hipaa.retention = common::Duration::years(20);
  hipaa.regulation_policy = 164;  // 45 CFR 164
  hipaa.shredding = storage::ShredPolicy::kNist3Pass;

  core::Sn chart_a = store.write(
      {.payloads = {common::to_bytes(
           "patient A: appendectomy, 2026-07-06, Dr. Reyes")},
       .attr = hipaa});
  core::Sn chart_b = store.write(
      {.payloads = {common::to_bytes(
           "patient B: cardiac stent, 2026-07-06, Dr. Okafor")},
       .attr = hipaa});
  std::printf("two charts archived (retention: 20 years, NIST 3-pass "
              "shredding)\n\n");

  // --- year 19: malpractice suit against Dr. Okafor --------------------------
  clock.advance(common::Duration::years(19));
  show(chart_a, "year 19");
  show(chart_b, "year 19");

  std::printf("\n[court] issuing litigation hold on patient B's chart "
              "(5-year hold)\n");
  common::SimTime hold_until = clock.now() + common::Duration::years(5);
  common::Bytes credential = crypto::rsa_sign(
      court, core::lit_credential_payload(chart_b, clock.now(), /*lit_id=*/88,
                                          /*hold=*/true));
  store.lit_hold({.sn = chart_b,
                  .lit_id = 88,
                  .hold_until = hold_until,
                  .cred_issued_at = clock.now(),
                  .credential = credential});

  // --- year 21: retention lapsed — chart A goes, chart B must stay ----------
  clock.advance(common::Duration::years(2));
  std::printf("\nyear 21 (retention expired last year):\n");
  show(chart_a, "year 21");
  show(chart_b, "year 21, under hold");

  // --- year 22: case settles, court releases the hold -------------------------
  clock.advance(common::Duration::years(1));
  std::printf("\n[court] case settled; releasing the hold\n");
  common::Bytes release = crypto::rsa_sign(
      court, core::lit_credential_payload(chart_b, clock.now(), 88, false));
  store.lit_release({.sn = chart_b,
                     .lit_id = 88,
                     .cred_issued_at = clock.now(),
                     .credential = release});
  clock.advance(common::Duration::days(1));  // RM wakes and deletes

  std::printf("\nafter release:\n");
  show(chart_b, "year 22, released");

  std::printf("\ndeletions performed by the retention monitor: %llu; every "
              "absent chart is backed by a verifiable proof.\n",
              static_cast<unsigned long long>(firmware.counters().deletions));
  return 0;
}
