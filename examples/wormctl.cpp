// wormctl — a persistent command-line WORM store over the file-backed
// stack. Each invocation boots the whole deployment from disk (block device,
// VRDT, record-store allocator, SCPU NVRAM, simulated clock), performs one
// operation, and persists everything back — a miniature of how an appliance
// built on this library would run.
//
//   wormctl <dir> init
//   wormctl <dir> put <retention-days> <text...>
//   wormctl <dir> get <sn>
//   wormctl <dir> status
//   wormctl <dir> audit
//   wormctl <dir> tick <hours>     advance simulated time (expiry, idle work)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "common/sim_clock.hpp"
#include "scpu/key_cache.hpp"
#include "scpu/scpu_device.hpp"
#include "storage/block_device.hpp"
#include "storage/record_store.hpp"
#include "worm/auditor.hpp"
#include "worm/session.hpp"
#include "worm/firmware.hpp"
#include "worm/worm_store.hpp"

using namespace worm;

namespace {

common::Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw common::StorageError("cannot read " + path);
  return common::Bytes((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, common::ByteView data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw common::StorageError("cannot write " + path);
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

struct Deployment {
  explicit Deployment(const std::string& dir, bool fresh)
      : state_dir(dir),
        device(clock, scpu::CostModel::ibm4764()),
        firmware(device, firmware_config(),
                 scpu::cached_rsa_key(0x1e6, 1024).public_key()),
        disk(dir + "/disk.bin", 4096, 4096),
        records(disk) {
    if (!fresh) {
      // Restore persisted state: clock first (alarms schedule against it).
      common::Bytes clk = read_file(state_dir + "/clock.bin");
      common::ByteReader r(clk);
      clock.advance_to(common::SimTime{r.i64()});
      firmware.restore_nvram(read_file(state_dir + "/nvram.bin"));
      records.restore_state(read_file(state_dir + "/rstore.bin"));
    }
    store = std::make_unique<core::WormStore>(clock, firmware, records,
                                              core::StoreConfig{});
    if (!fresh) {
      store->adopt_vrdt(core::Vrdt::load(state_dir + "/vrdt.bin"));
    }
  }

  static core::FirmwareConfig firmware_config() {
    core::FirmwareConfig cfg;
    cfg.heartbeat_interval = common::Duration::hours(1);
    cfg.sn_current_max_age = common::Duration::hours(3);
    return cfg;
  }

  void persist() {
    common::ByteWriter w;
    w.i64(clock.now().ns);
    write_file(state_dir + "/clock.bin", w.bytes());
    write_file(state_dir + "/nvram.bin", firmware.save_nvram());
    write_file(state_dir + "/rstore.bin", records.save_state());
    store->vrdt().save(state_dir + "/vrdt.bin");
    disk.flush();
  }

  std::string state_dir;
  common::SimClock clock;
  scpu::ScpuDevice device;
  core::Firmware firmware;
  storage::FileBlockDevice disk;
  storage::RecordStore records;
  std::unique_ptr<core::WormStore> store;
};

int usage() {
  std::fprintf(stderr,
               "usage: wormctl <dir> init\n"
               "       wormctl <dir> put <retention-days> <text...>\n"
               "       wormctl <dir> get <sn>\n"
               "       wormctl <dir> status\n"
               "       wormctl <dir> audit\n"
               "       wormctl <dir> tick <hours>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  std::string dir = argv[1];
  std::string cmd = argv[2];

  try {
    if (cmd == "init") {
      if (file_exists(dir + "/nvram.bin")) {
        std::fprintf(stderr, "wormctl: %s already initialized\n", dir.c_str());
        return 1;
      }
      Deployment d(dir, /*fresh=*/true);
      d.persist();
      std::printf("initialized WORM store in %s\n", dir.c_str());
      return 0;
    }

    Deployment d(dir, /*fresh=*/false);
    core::WormSession session(*d.store, "wormctl@cli", d.clock);
    core::ClientVerifier& verifier = session.verifier();

    if (cmd == "put" && argc >= 5) {
      core::Attr attr;
      attr.retention = common::Duration::days(std::atoll(argv[3]));
      std::string text;
      for (int i = 4; i < argc; ++i) {
        if (i > 4) text += ' ';
        text += argv[i];
      }
      core::Sn sn = d.store->write(
          {.payloads = {common::to_bytes(text)}, .attr = attr});
      std::printf("stored as SN %llu (retention %s days)\n",
                  static_cast<unsigned long long>(sn), argv[3]);
    } else if (cmd == "get" && argc == 4) {
      core::Sn sn = static_cast<core::Sn>(std::atoll(argv[3]));
      core::ReadOutcome res = d.store->read(sn);
      core::Outcome out = verifier.verify_read(sn, res);
      std::printf("SN %llu: %s %s\n", static_cast<unsigned long long>(sn),
                  core::to_string(out.verdict), out.detail.c_str());
      if (auto* ok = res.get_if<core::ReadOk>()) {
        std::printf("  %s\n", common::to_string(ok->payloads.at(0)).c_str());
      }
    } else if (cmd == "status") {
      std::printf("simulated time : %.1f h since epoch\n",
                  static_cast<double>(d.clock.now().ns) / 3.6e12);
      std::printf("SN window      : [%llu, %llu]\n",
                  static_cast<unsigned long long>(d.firmware.sn_base()),
                  static_cast<unsigned long long>(d.firmware.sn_current()));
      std::printf("VRDT           : %zu entries, %zu windows, %zu active\n",
                  d.store->vrdt().entry_count(), d.store->vrdt().window_count(),
                  d.store->vrdt().active_count());
      std::printf("pending        : %zu to strengthen, VEXP %zu\n",
                  d.firmware.deferred_count(), d.firmware.vexp_size());
    } else if (cmd == "audit") {
      core::AuditReport report = core::Auditor::audit_store(*d.store, verifier);
      std::printf("%s\n", core::Auditor::summarize(report).c_str());
    } else if (cmd == "tick" && argc == 4) {
      d.clock.advance(common::Duration::hours(std::atoll(argv[3])));
      while (d.store->pump_idle()) {
      }
      std::printf("advanced %s h; deletions so far: %llu\n", argv[3],
                  static_cast<unsigned long long>(
                      d.firmware.counters().deletions));
    } else {
      return usage();
    }
    d.persist();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wormctl: %s\n", e.what());
    return 1;
  }
}
