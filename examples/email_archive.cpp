// SEC 17a-4 broker-dealer email archive — the paper's motivating workload.
// Demonstrates:
//   * burst ingest under the §4.3 deferred-strength optimization (short
//     512-bit witnesses at ~4x the strong-signature rate),
//   * idle-time strengthening back to permanent 1024-bit signatures,
//   * multi-payload virtual records (message body + attachments under one
//     serial number),
//   * an insider ("the CFO's sysadmin") altering an archived message on the
//     raw device — and a compliance audit detecting it.
#include <cstdio>
#include <string>

#include "adversary/mallory.hpp"
#include "common/sim_clock.hpp"
#include "scpu/key_cache.hpp"
#include "scpu/scpu_device.hpp"
#include "storage/block_device.hpp"
#include "storage/record_store.hpp"
#include "worm/session.hpp"
#include "worm/firmware.hpp"
#include "worm/worm_store.hpp"

using namespace worm;

int main() {
  std::printf("== Broker-dealer email archive (SEC 17a-4) ==\n\n");

  common::SimClock clock;
  scpu::ScpuDevice device(clock, scpu::CostModel::ibm4764());
  core::Firmware firmware(device, core::FirmwareConfig{},
                          scpu::cached_rsa_key(0x1e6, 1024).public_key());
  storage::MemBlockDevice disk(4096, 4096, &clock);
  storage::RecordStore records(disk);

  core::StoreConfig cfg;
  cfg.default_mode = core::WitnessMode::kDeferred;  // burst optimization on
  cfg.hash_mode = core::HashMode::kHostHash;        // trusted-hash burst model
  core::WormStore store(clock, firmware, records, cfg);
  // The SEC examiner's session: principal-tagged access with its own
  // verifier and freshness watermark.
  core::WormSession audit(store, "examiner@sec.gov", clock);
  core::ClientVerifier& auditor = audit.verifier();

  // --- 9:30am: market opens, mail bursts in ---------------------------------
  core::Attr attr;
  attr.retention = common::Duration::years(6);  // 17a-4(b)(4): six years
  attr.regulation_policy = 17;

  const int kMessages = 200;
  common::SimTime t0 = clock.now();
  // The mail server queues the morning burst and ships it through the SCPU
  // mailbox in batches: one crossing witnesses up to max_batch messages.
  std::vector<core::WriteRequest> pending;
  pending.reserve(kMessages);
  for (int i = 0; i < kMessages; ++i) {
    pending.push_back(
        {.payloads = {common::to_bytes(
                          "From: trader" + std::to_string(i % 9) +
                          "@firm.example\nSubject: order flow " +
                          std::to_string(i) + "\n\nFill the ACME block order."),
                      common::to_bytes("attachment: blotter-" +
                                       std::to_string(i) + ".csv")},
         .attr = attr});
  }
  std::vector<core::Sn> sns = store.write_batch(pending);
  core::Sn first = sns.front(), last = sns.back();
  double burst_sec = (clock.now() - t0).to_seconds_f();
  auto counters = store.counters();
  std::printf("ingested %d two-part messages in %.2fs simulated "
              "(%.0f records/s, deferred 512-bit witnesses, "
              "%llu mailbox crossings)\n",
              kMessages, burst_sec, kMessages / burst_sec,
              static_cast<unsigned long long>(counters.at("mailbox.crossings")));
  std::printf("strengthening backlog: %zu records\n",
              firmware.deferred_count());

  // --- lunchtime lull: the store strengthens its backlog --------------------
  int pumps = 0;
  while (store.pump_idle()) ++pumps;
  std::printf("idle processing (%d batches): backlog now %zu, "
              "all witnesses upgraded to strong 1024-bit signatures\n",
              pumps, firmware.deferred_count());

  // --- quarterly compliance audit -------------------------------------------
  std::size_t verified = 0;
  for (core::Sn sn = first; sn <= last; ++sn) {
    if (auditor.verify_read(sn, store.read(sn)).verdict ==
        core::Verdict::kAuthentic) {
      ++verified;
    }
  }
  std::printf("\nquarterly audit: %zu/%d messages verified authentic\n",
              verified, kMessages);

  // --- the insider strikes ---------------------------------------------------
  core::Sn target = first + 17;
  std::printf("\n[insider] rewriting archived message SN %llu directly on "
              "the platters...\n", static_cast<unsigned long long>(target));
  adversary::tamper_record_data(store, disk, target);

  core::Outcome out = auditor.verify_read(target, store.read(target));
  std::printf("[auditor] re-reading SN %llu: %s — %s\n",
              static_cast<unsigned long long>(target),
              core::to_string(out.verdict), out.detail.c_str());

  std::printf("\nconclusion: the tampered message cannot pass verification; "
              "the alteration is detectable in litigation.\n");
  return 0;
}
