// Quickstart: the smallest complete Strong WORM deployment — one simulated
// secure coprocessor, one untrusted store — exercising the whole lifecycle:
// write, verified read, retention expiry, and verified proof-of-deletion.
//
//   $ ./quickstart
#include <cstdio>

#include "common/sim_clock.hpp"
#include "crypto/rsa.hpp"
#include "scpu/key_cache.hpp"
#include "scpu/scpu_device.hpp"
#include "storage/block_device.hpp"
#include "storage/record_store.hpp"
#include "worm/firmware.hpp"
#include "worm/session.hpp"

using namespace worm;

int main() {
  std::printf("== Strong WORM quickstart ==\n\n");

  // --- deployment -----------------------------------------------------------
  // One simulation clock drives everything: the SCPU's tamper-protected
  // internal clock, disk latency, and the retention monitor's alarms.
  common::SimClock clock;

  // The secure coprocessor (IBM 4764-class performance model) and its
  // certified WORM firmware. The regulator's public key is installed at
  // deployment so litigation-hold credentials can be checked on-card.
  scpu::ScpuDevice device(clock, scpu::CostModel::ibm4764());
  const crypto::RsaPrivateKey& regulator = scpu::cached_rsa_key(0x1e6, 1024);
  core::Firmware firmware(device, core::FirmwareConfig{},
                          regulator.public_key());

  // Untrusted host-side storage: block device + record store + WORM store.
  storage::MemBlockDevice disk(4096, 1024, &clock);
  storage::RecordStore records(disk);
  core::WormStore store(clock, firmware, records, core::StoreConfig{});

  // A client ("Bob", e.g. a federal investigator) opens a session: one
  // principal, one freshness watermark, one verifier — Bob trusts only the
  // SCPU's certificates and his synchronized clock.
  core::WormSession bob(store, "bob@sec.gov", clock);

  // --- write ---------------------------------------------------------------
  core::Attr attr;
  attr.retention = common::Duration::days(7);
  attr.regulation_policy = 17;  // e.g. SEC rule 17a-4
  attr.shredding = storage::ShredPolicy::kNist3Pass;

  core::Sn sn = bob.write(
      {.payloads = {common::to_bytes(
           "trade ticket #8571: SELL 500 ACME @ 42.17")},
       .attr = attr});
  std::printf("wrote record, SCPU issued serial number %llu\n",
              static_cast<unsigned long long>(sn));

  // --- verified read --------------------------------------------------------
  core::WormSession::VerifiedRead vr = bob.verified_read(sn);
  core::ReadOutcome& res = vr.outcome;
  core::Outcome out = vr.verdict;
  std::printf("read + client verification: %s\n", core::to_string(out.verdict));
  if (auto* ok = res.get_if<core::ReadOk>()) {
    std::printf("  payload: \"%s\"\n",
                common::to_string(ok->payloads[0]).c_str());
    std::printf("  metasig: %s RSA, %zu bytes\n",
                core::to_string(ok->vrd.metasig.kind),
                ok->vrd.metasig.value.size());
  }

  // --- a read of a never-written serial number ------------------------------
  out = bob.verified_read(999).verdict;
  std::printf("read of SN 999: %s (%s)\n", core::to_string(out.verdict),
              out.detail.c_str());
  std::printf("session watermark: SN_current=%llu, fresh=%s\n",
              static_cast<unsigned long long>(bob.watermark().sn_current),
              bob.fresh(common::Duration::minutes(5)) ? "yes" : "no");

  // --- retention expiry -----------------------------------------------------
  std::printf("\nfast-forwarding 8 days of simulated time...\n");
  clock.advance(common::Duration::days(8));

  out = bob.verified_read(sn).verdict;
  std::printf("read after retention: %s (%s)\n", core::to_string(out.verdict),
              out.detail.c_str());
  std::printf("records shredded by retention monitor: %llu\n",
              static_cast<unsigned long long>(store.counters().at("store.expirations")));

  std::printf("\nSCPU lifetime busy time: %.1f ms of %.0f hours simulated\n",
              device.busy_time().to_seconds_f() * 1e3,
              (clock.now() - common::SimTime::epoch()).to_seconds_f() / 3600);
  return 0;
}
