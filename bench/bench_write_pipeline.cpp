// Group-commit write pipeline: sync-vs-async throughput and the batch knob.
// §4.1's arithmetic says the write path lives or dies by mailbox crossings —
// 25us of command overhead per crossing that no faster host can hide — so the
// pipeline's whole value is crossings-per-record. This bench measures it:
// a synchronous single-writer baseline (one crossing per record), then the
// async pipeline at 1/2/4/8 writer threads (one crossing per group), then a
// max_batch sweep at 8 writers.
//
// Methodology (same convention as bench_concurrent_reads): writer threads
// execute the REAL concurrent code path — admission-side chained hashing,
// the journaling lock, the bounded queue, the committer's batched crossings —
// so races are exercised (and caught under -fsanitize=thread), while
// throughput is computed from the calibrated cost models, not container
// wall-clock. In pipeline mode the store deliberately does NOT charge the
// admission-side hash to the shared clock (it runs N-wide on the writers);
// each thread accounts that modeled cost itself, and the makespan is the
// slowest thread's busy time plus the serial fraction — everything the
// committer charged on the shared clock (crossing overhead, MAC witnessing,
// wire transfer). The sync baseline charges hash and crossing alike on the
// shared clock, so its makespan is just the serial fraction. Wall-clock
// ack latency (submit -> ticket resolution) is reported as p50/p99 for a
// contention sanity check only.
//
// Exit code is a regression gate, mirroring bench_concurrent_reads: async
// throughput at 8 writers with max_batch=16 must be >= 3x the synchronous
// single-writer baseline.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"

using namespace worm;

namespace {

constexpr std::size_t kPayload = 8192;
constexpr std::size_t kOps = 512;  // per row; fresh rig each row
constexpr std::size_t kWindow = 32;  // tickets in flight per writer

core::StoreConfig pipeline_config(std::size_t max_batch) {
  core::StoreConfig sc;
  sc.default_mode = core::WitnessMode::kHmac;  // §4.3 burst mode
  sc.hash_mode = core::HashMode::kHostHash;    // admission-side hashing
  sc.pipeline.enabled = true;
  sc.pipeline.max_batch = max_batch;
  sc.pipeline.queue_capacity = 256;
  return sc;
}

struct SweepResult {
  double throughput = 0;  // modeled records/s
  double p50_us = 0;      // wall-clock submit->ack
  double p99_us = 0;
};

/// N writer threads push kOps/N records each through write_async, keeping up
/// to kWindow tickets outstanding so the committer sees full groups.
SweepResult run_async_sweep(bench::BenchRig& rig, std::size_t nthreads) {
  const scpu::CostModel& host = rig.store.config().host_model;
  const common::Duration hash_cost = host.hash_cost(kPayload);
  common::Bytes payload(kPayload, 0x5a);
  core::Attr attr;
  attr.retention = common::Duration::years(5);

  std::vector<std::thread> threads;
  std::vector<common::Duration> busy(nthreads);
  std::vector<std::vector<double>> wall(nthreads);
  common::Duration serial0 = rig.clock.total_charged();

  for (std::size_t t = 0; t < nthreads; ++t) {
    threads.emplace_back([&, t] {
      std::size_t ops = kOps / nthreads;
      wall[t].reserve(ops);
      std::vector<std::pair<core::WriteTicket,
                            std::chrono::steady_clock::time_point>>
          window;
      window.reserve(kWindow);
      auto collect = [&] {
        for (auto& [ticket, w0] : window) {
          (void)ticket.get();
          wall[t].push_back(std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - w0)
                                .count());
        }
        window.clear();
      };
      for (std::size_t i = 0; i < ops; ++i) {
        auto w0 = std::chrono::steady_clock::now();
        window.emplace_back(
            rig.store.write_async(
                {.payloads = {payload}, .attr = attr}),
            w0);
        busy[t] += hash_cost;  // modeled admission-side work, run thread-wide
        if (window.size() >= kWindow) collect();
      }
      collect();
    });
  }
  for (auto& th : threads) th.join();
  rig.store.drain_writes();

  common::Duration serial = rig.clock.total_charged() - serial0;
  common::Duration slowest{};
  std::vector<double> all_wall;
  for (std::size_t t = 0; t < nthreads; ++t) {
    slowest = std::max(slowest, busy[t]);
    all_wall.insert(all_wall.end(), wall[t].begin(), wall[t].end());
  }
  SweepResult r;
  r.throughput =
      static_cast<double>(all_wall.size()) / (slowest + serial).to_seconds_f();
  r.p50_us = bench::percentile(all_wall, 50);
  r.p99_us = bench::percentile(all_wall, 99);
  return r;
}

}  // namespace

int main() {
  bench::print_header(
      "Group-commit write pipeline — sync vs async writers, batch sweep (8KB)",
      "§4.1: write throughput is crossings-per-record; group commit amortizes "
      "the 25us command overhead across a batch");

  // Synchronous single-writer baseline: one crossing per record, everything
  // serialized on the shared clock.
  double sync_base = 0;
  {
    core::StoreConfig sc;
    sc.default_mode = core::WitnessMode::kHmac;
    sc.hash_mode = core::HashMode::kHostHash;
    bench::BenchRig rig(bench::bench_fw_config(), sc);
    common::Bytes payload(kPayload, 0x5a);
    core::Attr attr;
    attr.retention = common::Duration::years(5);
    common::Duration serial0 = rig.clock.total_charged();
    for (std::size_t i = 0; i < kOps; ++i) {
      (void)rig.store.write({.payloads = {payload}, .attr = attr});
    }
    common::Duration serial = rig.clock.total_charged() - serial0;
    sync_base = static_cast<double>(kOps) / serial.to_seconds_f();
  }

  std::vector<bench::BenchRow> rows;
  rows.push_back({"sync_write", 1, sync_base, 0, 0});
  std::printf("%-22s %8s %16s %10s %10s %10s\n", "op", "threads",
              "modeled rec/s", "speedup", "p50 us", "p99 us");
  std::printf("%-22s %8d %16.0f %9.2fx %10s %10s\n", "sync_write", 1,
              sync_base, 1.0, "-", "-");

  // Async writer sweep at the default group size (max_batch = 16).
  double at8 = 0;
  for (std::size_t k : {1u, 2u, 4u, 8u}) {
    bench::BenchRig rig(bench::bench_fw_config(), pipeline_config(16));
    SweepResult r = run_async_sweep(rig, k);
    if (k == 8) at8 = r.throughput;
    std::printf("%-22s %8zu %16.0f %9.2fx %10.1f %10.1f\n", "async_write", k,
                r.throughput, r.throughput / sync_base, r.p50_us, r.p99_us);
    rows.push_back({"async_write", k, r.throughput, r.p50_us, r.p99_us});
    if (k == 8) {
      std::printf("\n  write-pipeline counters at 8 writers:\n");
      // kSettled: make sure the committer retired every admitted group
      // before sampling, so the printed counters describe a quiesced run.
      core::CountersSnapshot snap =
          rig.store.counters_snapshot(core::CounterFlush::kSettled);
      for (const auto& [name, value] : snap.as_map()) {
        if (std::string(name).rfind("write_pipeline.", 0) == 0) {
          std::printf("    %-36s %llu\n", std::string(name).c_str(),
                      static_cast<unsigned long long>(value));
        }
      }
      std::printf("\n");
    }
  }

  // Batch-size sweep at 8 writers: the knob IS crossings-per-record.
  std::printf("\nbatch sweep at 8 writers (crossing amortization):\n");
  for (std::size_t b : {1u, 2u, 4u, 8u, 16u, 32u}) {
    bench::BenchRig rig(bench::bench_fw_config(), pipeline_config(b));
    SweepResult r = run_async_sweep(rig, 8);
    std::printf("%-22s %8d %16.0f %9.2fx %10.1f %10.1f\n",
                ("async_b" + std::to_string(b)).c_str(), 8, r.throughput,
                r.throughput / sync_base, r.p50_us, r.p99_us);
    rows.push_back(
        {"async_b" + std::to_string(b), 8, r.throughput, r.p50_us, r.p99_us});
  }

  double speedup = at8 / sync_base;
  std::printf(
      "\nasync speedup at 8 writers, max_batch=16: %.2fx (gate >= 3x)\n"
      "Reading: the sync path pays a full crossing per record; the pipeline\n"
      "pays one per group and moves hashing onto the (parallel) admitting\n"
      "threads, so only MAC witnessing and the amortized crossing stay on\n"
      "the serialized clock — the same division of labor the paper uses to\n"
      "keep the slow SCPU off the fast path.\n",
      speedup);
  bench::write_bench_json("write_pipeline", rows);
  return speedup >= 3.0 ? 0 : 1;
}
