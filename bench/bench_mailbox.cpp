// Mailbox transport microbenchmark: what the PCI-X boundary costs and what
// batching buys back.
//
//   (a) A/B the per-crossing transfer charge (MailboxConfig::charge_transfer)
//       to isolate the transport's share of burst latency,
//   (b) sweep kWriteBatch batch sizes at fixed workload,
//   (c) dump the store's counters so the crossing/byte arithmetic is visible.
//
// The transfer cost is command_cost (~0.68 ms round trip, Table 2) plus DMA
// for the bytes actually moved — so for small records the crossing, not the
// crypto, dominates, and batching converts N crossings into one.
#include <cstdio>

#include "bench_util.hpp"

using namespace worm;

namespace {

core::StoreConfig burst_config(bool charge_transfer, std::size_t max_batch) {
  core::StoreConfig sc;
  sc.default_mode = core::WitnessMode::kDeferred;
  sc.hash_mode = core::HashMode::kHostHash;
  sc.mailbox.charge_transfer = charge_transfer;
  sc.mailbox.max_batch = max_batch;
  return sc;
}

}  // namespace

int main() {
  const std::size_t kN = 400;

  bench::print_header(
      "Mailbox A/B — per-record deferred burst, transfer cost on vs off",
      "Table 2 command cost ~0.68 ms/crossing; off = legacy in-process bind");
  std::printf("%8s %20s %20s\n", "size", "with transfer", "without");
  for (std::size_t size : {512u, 1024u, 4096u, 16384u}) {
    bench::BenchRig with(bench::bench_fw_config(), burst_config(true, 64));
    bench::BenchRig without(bench::bench_fw_config(), burst_config(false, 64));
    auto tw =
        bench::measure_writes(with, size, kN, core::WitnessMode::kDeferred);
    auto to =
        bench::measure_writes(without, size, kN, core::WitnessMode::kDeferred);
    std::printf("%7zuB %14.0f rec/s %14.0f rec/s\n", size, tw.records_per_sec,
                to.records_per_sec);
  }

  bench::print_header(
      "kWriteBatch sweep — 400 x 1KB deferred burst, transfer cost on",
      "§4.1 amortization: one crossing witnesses up to max_batch records");
  std::printf("%10s %16s %12s %14s\n", "batch", "throughput", "crossings",
              "bytes crossed");
  for (std::size_t batch : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    bench::BenchRig rig(bench::bench_fw_config(), burst_config(true, batch));
    auto t = bench::measure_batched_writes(rig, 1024, kN,
                                           core::WitnessMode::kDeferred, batch);
    auto counters = rig.store.counters();
    std::printf("%10zu %10.0f rec/s %12llu %14llu\n", batch,
                t.records_per_sec,
                static_cast<unsigned long long>(counters.at("mailbox.crossings")),
                static_cast<unsigned long long>(
                    counters.at("mailbox.bytes_crossed")));
  }

  bench::print_header("Counter dump — batched burst followed by idle pumping",
                      "WormStore::counters(): operation + transport metrics");
  {
    bench::BenchRig rig(bench::bench_fw_config(), burst_config(true, 64));
    bench::measure_batched_writes(rig, 1024, kN, core::WitnessMode::kDeferred,
                                  64);
    while (rig.store.pump_idle()) {
    }
    bench::print_counters(rig.store);
  }
  return 0;
}
