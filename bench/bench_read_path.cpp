// §4.1 design-point check: "the SCPU is involved in *updates* only but not
// in *reads*, thus minimizing the overhead for a query load dominated by
// read queries." This bench runs mixed read/write workloads and reports
// aggregate throughput plus SCPU busy share — reads must cost the SCPU
// nothing, so throughput should rise and SCPU utilization fall as the mix
// shifts toward reads.
#include <cstdio>

#include "bench_util.hpp"
#include "crypto/drbg.hpp"

using namespace worm;

int main() {
  bench::print_header(
      "Read/write mix — aggregate ops/s and SCPU utilization (1KB records)",
      "§4.1: SCPU witnesses updates only; reads are pure main-CPU work");

  std::printf("%12s %16s %14s %16s\n", "read share", "aggregate ops/s",
              "SCPU busy", "writes ops/s");
  for (int read_pct : {0, 50, 90, 99}) {
    core::StoreConfig sc;
    sc.default_mode = core::WitnessMode::kDeferred;
    sc.hash_mode = core::HashMode::kHostHash;
    bench::BenchRig rig(bench::bench_fw_config(), sc);
    crypto::Drbg rng(0x0bb);

    common::Bytes payload(1024, 0x5a);
    core::Attr attr;
    attr.retention = common::Duration::years(5);
    // Seed some records so reads have targets.
    for (int i = 0; i < 50; ++i) {
      rig.store.write({.payloads = {payload},
                       .attr = attr,
                       .mode = core::WitnessMode::kDeferred});
    }

    const std::size_t ops = 2000;
    std::size_t writes = 0;
    common::SimTime t0 = rig.clock.now();
    common::Duration busy0 = rig.device.busy_time();
    for (std::size_t i = 0; i < ops; ++i) {
      if (rng.uniform(100) < static_cast<std::uint64_t>(read_pct)) {
        core::Sn sn = 1 + rng.uniform(rig.firmware.sn_current());
        (void)rig.store.read(sn);
        // Model the host-side cost of shipping the record to the client.
        rig.clock.charge(
            rig.store.config().host_model.dma_cost(payload.size()));
      } else {
        rig.store.write({.payloads = {payload},
                       .attr = attr,
                       .mode = core::WitnessMode::kDeferred});
        ++writes;
      }
    }
    double elapsed = (rig.clock.now() - t0).to_seconds_f();
    double busy =
        (rig.device.busy_time() - busy0).to_seconds_f() / elapsed * 100;
    std::printf("%11d%% %13.0f %13.0f%% %16.0f\n", read_pct,
                static_cast<double>(ops) / elapsed, busy,
                static_cast<double>(writes) / elapsed);
  }

  std::printf(
      "\nReading: aggregate throughput scales toward memory speed as the mix\n"
      "goes read-heavy, and SCPU utilization falls in proportion to the\n"
      "write share — the witness hardware is off the read path entirely.\n");
  return 0;
}
