// §4.1 design-point check: "the SCPU is involved in *updates* only but not
// in *reads*, thus minimizing the overhead for a query load dominated by
// read queries." This bench runs mixed read/write workloads after a warm-up
// pass and reports aggregate throughput, SCPU busy share, and the p50/p99
// per-op simulated latency — reads must cost the SCPU nothing, so
// throughput should rise and SCPU utilization fall as the mix shifts toward
// reads, while read-heavy tails tighten (no mailbox round-trips to wait on).
#include <cstdio>

#include "bench_util.hpp"
#include "crypto/drbg.hpp"

using namespace worm;

int main() {
  bench::print_header(
      "Read/write mix — aggregate ops/s, SCPU utilization, latency (1KB)",
      "§4.1: SCPU witnesses updates only; reads are pure main-CPU work");

  std::vector<bench::BenchRow> rows;
  std::printf("%12s %16s %14s %16s %10s %10s\n", "read share",
              "aggregate ops/s", "SCPU busy", "writes ops/s", "p50 us",
              "p99 us");
  for (int read_pct : {0, 50, 90, 99}) {
    core::StoreConfig sc;
    sc.default_mode = core::WitnessMode::kDeferred;
    sc.hash_mode = core::HashMode::kHostHash;
    bench::BenchRig rig(bench::bench_fw_config(), sc);
    crypto::Drbg rng(0x0bb);

    common::Bytes payload(1024, 0x5a);
    core::Attr attr;
    attr.retention = common::Duration::years(5);
    // Seed some records so reads have targets.
    for (int i = 0; i < 50; ++i) {
      (void)rig.store.write({.payloads = {payload},
                             .attr = attr,
                             .mode = core::WitnessMode::kDeferred});
    }
    // Warm-up: touch every seeded record once so the measured loop sees a
    // steady state (read cache populated, short-term keys generated) instead
    // of first-access costs.
    for (core::Sn sn = 1; sn <= 50; ++sn) (void)rig.store.read(sn);

    const std::size_t ops = 2000;
    std::size_t writes = 0;
    std::vector<double> op_us;
    op_us.reserve(ops);
    common::SimTime t0 = rig.clock.now();
    common::Duration busy0 = rig.device.busy_time();
    for (std::size_t i = 0; i < ops; ++i) {
      common::SimTime op_start = rig.clock.now();
      if (rng.uniform(100) < static_cast<std::uint64_t>(read_pct)) {
        core::Sn sn = 1 + rng.uniform(rig.firmware.sn_current());
        (void)rig.store.read(sn);
        // Model the host-side cost of shipping the record to the client.
        rig.clock.charge(
            rig.store.config().host_model.dma_cost(payload.size()));
      } else {
        (void)rig.store.write({.payloads = {payload},
                               .attr = attr,
                               .mode = core::WitnessMode::kDeferred});
        ++writes;
      }
      op_us.push_back((rig.clock.now() - op_start).to_seconds_f() * 1e6);
    }
    double elapsed = (rig.clock.now() - t0).to_seconds_f();
    double busy =
        (rig.device.busy_time() - busy0).to_seconds_f() / elapsed * 100;
    double p50 = bench::percentile(op_us, 50);
    double p99 = bench::percentile(op_us, 99);
    std::printf("%11d%% %13.0f %13.0f%% %16.0f %10.1f %10.1f\n", read_pct,
                static_cast<double>(ops) / elapsed, busy,
                static_cast<double>(writes) / elapsed, p50, p99);
    rows.push_back({"mix_read_" + std::to_string(read_pct), 1,
                    static_cast<double>(ops) / elapsed, p50, p99});
  }

  std::printf(
      "\nReading: aggregate throughput scales toward memory speed as the mix\n"
      "goes read-heavy, and SCPU utilization falls in proportion to the\n"
      "write share — the witness hardware is off the read path entirely.\n"
      "The p99 collapses with the write share too: tail latency is mailbox\n"
      "round-trips, which reads never make.\n");
  bench::write_bench_json("read_path", rows);
  return 0;
}
