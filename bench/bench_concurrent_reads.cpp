// Read-path concurrency: §4.2.2 serves reads entirely from the untrusted
// main CPU, so read throughput must scale with host parallelism — the SCPU
// is not on the path at all. This bench races N client threads over a warm
// store (verification on, read cache + signature memo populated) and
// reports aggregate throughput.
//
// Methodology (same convention as bench_scaling): threads execute the REAL
// concurrent code path — shared-lock reads, sharded cache hits, block-device
// copies, memoized client verification — so races are exercised (and
// caught under -fsanitize=thread), while throughput is computed from the
// calibrated cost models rather than container wall-clock. Each thread
// accumulates the modeled host cost of the ops it served (client-side
// chained hash + serving DMA, per Table 2's P4 model); the makespan is the
// slowest thread's busy time plus the serial fraction — simulated charges
// the store made on the shared clock during the run (zero on the warm
// in-memory path; the whole story on the cold disk-bound row). Wall-clock
// per-op p50/p99 is reported alongside as a contention sanity check only.
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_util.hpp"

using namespace worm;

namespace {

struct SweepResult {
  double throughput = 0;  // modeled ops/s
  double p50_us = 0;      // wall-clock per-op
  double p99_us = 0;
  std::size_t failures = 0;
};

SweepResult run_sweep(bench::BenchRig& rig, const core::ClientVerifier& ver,
                      const std::vector<core::Sn>& sns, std::size_t nthreads,
                      std::size_t total_ops, std::size_t payload_size) {
  const scpu::CostModel& host = rig.store.config().host_model;
  const common::Duration per_op =
      host.hash_cost(payload_size) + host.dma_cost(payload_size);

  std::vector<std::thread> threads;
  std::vector<common::Duration> busy(nthreads);
  std::vector<std::vector<double>> wall(nthreads);
  std::atomic<std::size_t> failures{0};
  common::Duration serial0 = rig.clock.total_charged();

  for (std::size_t t = 0; t < nthreads; ++t) {
    threads.emplace_back([&, t] {
      std::size_t ops = total_ops / nthreads;
      wall[t].reserve(ops);
      for (std::size_t i = 0; i < ops; ++i) {
        core::Sn sn = sns[(t * ops + i) % sns.size()];
        auto w0 = std::chrono::steady_clock::now();
        core::ReadOutcome res = rig.store.read(sn);
        core::Outcome out = ver.verify_read(sn, res);
        auto w1 = std::chrono::steady_clock::now();
        if (out.verdict != core::Verdict::kAuthentic) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        busy[t] += per_op;
        wall[t].push_back(
            std::chrono::duration<double, std::micro>(w1 - w0).count());
      }
    });
  }
  for (auto& th : threads) th.join();

  common::Duration serial = rig.clock.total_charged() - serial0;
  common::Duration slowest{};
  std::vector<double> all_wall;
  for (std::size_t t = 0; t < nthreads; ++t) {
    slowest = std::max(slowest, busy[t]);
    all_wall.insert(all_wall.end(), wall[t].begin(), wall[t].end());
  }
  double makespan = (slowest + serial).to_seconds_f();
  SweepResult r;
  r.throughput = static_cast<double>(all_wall.size()) / makespan;
  r.p50_us = bench::percentile(all_wall, 50);
  r.p99_us = bench::percentile(all_wall, 99);
  r.failures = failures.load();
  return r;
}

}  // namespace

int main() {
  bench::print_header(
      "Concurrent verified reads — thread sweep over a warm store (1KB)",
      "§4.2.2: reads are main-CPU-only, so they scale with host threads");

  const std::size_t kRecords = 256;
  const std::size_t kPayload = 1024;
  const std::size_t kOps = 8000;

  core::StoreConfig sc;  // kStrong default: records verify immediately
  bench::BenchRig rig(bench::bench_fw_config(), sc);
  common::Bytes payload(kPayload, 0x5a);
  core::Attr attr;
  attr.retention = common::Duration::years(5);
  std::vector<core::Sn> sns;
  for (std::size_t i = 0; i < kRecords; ++i) {
    sns.push_back(rig.store.write({.payloads = {payload}, .attr = attr}));
  }
  // One shared memo across all client threads: repeated RSA verifications
  // of the same witnesses collapse to lookups (the read-path hot loop).
  auto memo = std::make_shared<core::SigVerifyMemo>();
  core::ClientVerifier verifier(rig.store.anchors(), rig.clock, memo);
  // Warm-up: populate the read cache and the signature memo.
  for (core::Sn sn : sns) (void)verifier.verify_read(sn, rig.store.read(sn));

  std::vector<bench::BenchRow> rows;
  std::printf("%8s %16s %10s %10s %10s %9s\n", "threads", "modeled ops/s",
              "speedup", "p50 us", "p99 us", "failures");
  double base = 0;
  double at8 = 0;
  for (std::size_t k : {1u, 2u, 4u, 8u}) {
    SweepResult r = run_sweep(rig, verifier, sns, k, kOps, kPayload);
    if (base == 0) base = r.throughput;
    if (k == 8) at8 = r.throughput;
    std::printf("%8zu %16.0f %9.2fx %10.1f %10.1f %9zu\n", k, r.throughput,
                r.throughput / base, r.p50_us, r.p99_us, r.failures);
    rows.push_back(
        {"warm_verified_read", k, r.throughput, r.p50_us, r.p99_us});
  }
  std::printf("\nspeedup at 8 threads: %.2fx (target >= 4x)\n", at8 / base);

  // Cold, disk-bound contrast (§5): with 2008 enterprise-disk latency and
  // nothing warm, the serial disk charges dominate the makespan and
  // concurrency buys little — the paper's observed operational bottleneck.
  bench::BenchRig cold_rig(bench::bench_fw_config(), sc,
                           storage::LatencyModel::enterprise_disk_2008());
  std::vector<core::Sn> cold_sns;
  for (std::size_t i = 0; i < kRecords; ++i) {
    cold_sns.push_back(
        cold_rig.store.write({.payloads = {payload}, .attr = attr}));
  }
  core::ClientVerifier cold_ver(cold_rig.store.anchors(), cold_rig.clock);
  SweepResult cold =
      run_sweep(cold_rig, cold_ver, cold_sns, 8, kRecords * 2, kPayload);
  std::printf(
      "\ncold 8-thread disk-bound row: %.0f ops/s — seek latency, not the\n"
      "WORM layer, is the bottleneck once the cache is out of the picture.\n",
      cold.throughput);
  rows.push_back({"cold_disk_bound_read", 8, cold.throughput, cold.p50_us,
                  cold.p99_us});

  std::printf("\nstore counters after the sweeps:\n");
  bench::print_counters(rig.store);
  bench::write_bench_json("concurrent_reads", rows);
  return at8 / base >= 4.0 ? 0 : 1;
}
