// Shared experiment rig for the benchmark binaries. Each experiment builds a
// fresh simulated deployment, drives a workload, and reads *simulated* time
// off the clock — which the calibrated cost models (Table 2) turn into the
// paper's absolute throughput numbers regardless of build hardware.
#pragma once

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/sim_clock.hpp"
#include "scpu/key_cache.hpp"
#include "scpu/scpu_device.hpp"
#include "storage/block_device.hpp"
#include "storage/record_store.hpp"
#include "worm/client_verifier.hpp"
#include "worm/firmware.hpp"
#include "worm/worm_store.hpp"

namespace worm::bench {

inline const crypto::RsaPrivateKey& regulator_key() {
  return scpu::cached_rsa_key(0x1e6a1, 1024);
}

/// One deployment on the heap (the benches build many).
struct BenchRig {
  BenchRig(core::FirmwareConfig fw_cfg, core::StoreConfig st_cfg,
           storage::LatencyModel disk_latency = storage::LatencyModel::none(),
           std::size_t disk_block = 65536)
      : device(clock, scpu::CostModel::ibm4764()),
        firmware(device, fw_cfg, regulator_key().public_key()),
        disk(disk_block, 1024, &clock, disk_latency),
        records(disk),
        store(clock, firmware, records, st_cfg) {}

  common::SimClock clock;
  scpu::ScpuDevice device;
  core::Firmware firmware;
  storage::MemBlockDevice disk;
  storage::RecordStore records;
  core::WormStore store;
};

/// Firmware config tuned for long burst benchmarks: generous short-key
/// rotation so a sweep is not interrupted by inline keygen.
inline core::FirmwareConfig bench_fw_config() {
  core::FirmwareConfig cfg;
  cfg.heartbeat_interval = common::Duration::minutes(2);
  cfg.short_key_rotation = common::Duration::hours(2);
  cfg.short_sig_lifetime = common::Duration::minutes(90);
  return cfg;
}

struct Throughput {
  double records_per_sec = 0;
  double scpu_busy_frac = 0;
  double elapsed_sec = 0;
};

/// Writes `n` records of `size` bytes in a burst and reports simulated
/// throughput.
inline Throughput measure_writes(BenchRig& rig, std::size_t size,
                                 std::size_t n, core::WitnessMode mode) {
  common::Bytes payload(size, 0x5a);
  core::Attr attr;
  attr.retention = common::Duration::years(5);

  common::SimTime t0 = rig.clock.now();
  common::Duration busy0 = rig.device.busy_time();
  for (std::size_t i = 0; i < n; ++i) {
    rig.store.write({.payloads = {payload}, .attr = attr, .mode = mode});
  }
  Throughput t;
  t.elapsed_sec = (rig.clock.now() - t0).to_seconds_f();
  t.records_per_sec = static_cast<double>(n) / t.elapsed_sec;
  t.scpu_busy_frac =
      (rig.device.busy_time() - busy0).to_seconds_f() / t.elapsed_sec;
  return t;
}

/// Same burst shipped through WormStore::write_batch (kWriteBatch crossings,
/// `batch` requests queued per submission).
inline Throughput measure_batched_writes(BenchRig& rig, std::size_t size,
                                         std::size_t n, core::WitnessMode mode,
                                         std::size_t batch) {
  common::Bytes payload(size, 0x5a);
  core::Attr attr;
  attr.retention = common::Duration::years(5);

  common::SimTime t0 = rig.clock.now();
  common::Duration busy0 = rig.device.busy_time();
  std::size_t done = 0;
  while (done < n) {
    std::size_t take = std::min(batch, n - done);
    std::vector<core::WriteRequest> queue(
        take, {.payloads = {payload}, .attr = attr, .mode = mode});
    rig.store.write_batch(queue);
    done += take;
  }
  Throughput t;
  t.elapsed_sec = (rig.clock.now() - t0).to_seconds_f();
  t.records_per_sec = static_cast<double>(n) / t.elapsed_sec;
  t.scpu_busy_frac =
      (rig.device.busy_time() - busy0).to_seconds_f() / t.elapsed_sec;
  return t;
}

/// Dumps the store's named counters (operation counts + mailbox transport
/// metrics) in a stable two-column form.
inline void print_counters(const core::WormStore& store) {
  for (const auto& [name, value] : store.counters()) {
    std::printf("  %-24s %llu\n", std::string(name).c_str(),
                static_cast<unsigned long long>(value));
  }
}

/// Record count that keeps memory and wall time bounded across sizes.
inline std::size_t records_for_size(std::size_t size) {
  std::size_t n = (48u << 20) / size;
  if (n > 400) n = 400;
  if (n < 24) n = 24;
  return n;
}

inline void print_header(const std::string& title, const std::string& paper) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper reference: %s\n", paper.c_str());
  std::printf("================================================================\n");
}

}  // namespace worm::bench
