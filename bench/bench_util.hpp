// Shared experiment rig for the benchmark binaries. Each experiment builds a
// fresh simulated deployment, drives a workload, and reads *simulated* time
// off the clock — which the calibrated cost models (Table 2) turn into the
// paper's absolute throughput numbers regardless of build hardware.
#pragma once

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cluster/shard_router.hpp"
#include "common/sim_clock.hpp"
#include "scpu/key_cache.hpp"
#include "scpu/scpu_device.hpp"
#include "storage/block_device.hpp"
#include "storage/record_store.hpp"
#include "worm/client_verifier.hpp"
#include "worm/firmware.hpp"
#include "worm/worm_store.hpp"

namespace worm::bench {

inline const crypto::RsaPrivateKey& regulator_key() {
  return scpu::cached_rsa_key(0x1e6a1, 1024);
}

/// One deployment on the heap (the benches build many).
struct BenchRig {
  BenchRig(core::FirmwareConfig fw_cfg, core::StoreConfig st_cfg,
           storage::LatencyModel disk_latency = storage::LatencyModel::none(),
           std::size_t disk_block = 65536)
      : device(clock, scpu::CostModel::ibm4764()),
        firmware(device, fw_cfg, regulator_key().public_key()),
        disk(disk_block, 1024, &clock, disk_latency),
        records(disk),
        store(clock, firmware, records, st_cfg) {}

  common::SimClock clock;
  scpu::ScpuDevice device;
  core::Firmware firmware;
  storage::MemBlockDevice disk;
  storage::RecordStore records;
  core::WormStore store;
};

/// Firmware config tuned for long burst benchmarks: generous short-key
/// rotation so a sweep is not interrupted by inline keygen.
inline core::FirmwareConfig bench_fw_config() {
  core::FirmwareConfig cfg;
  cfg.heartbeat_interval = common::Duration::minutes(2);
  cfg.short_key_rotation = common::Duration::hours(2);
  cfg.short_sig_lifetime = common::Duration::minutes(90);
  return cfg;
}

struct Throughput {
  double records_per_sec = 0;
  double scpu_busy_frac = 0;
  double elapsed_sec = 0;
};

/// Writes `n` records of `size` bytes in a burst and reports simulated
/// throughput.
inline Throughput measure_writes(BenchRig& rig, std::size_t size,
                                 std::size_t n, core::WitnessMode mode) {
  common::Bytes payload(size, 0x5a);
  core::Attr attr;
  attr.retention = common::Duration::years(5);

  common::SimTime t0 = rig.clock.now();
  common::Duration busy0 = rig.device.busy_time();
  for (std::size_t i = 0; i < n; ++i) {
    (void)rig.store.write({.payloads = {payload}, .attr = attr, .mode = mode});
  }
  Throughput t;
  t.elapsed_sec = (rig.clock.now() - t0).to_seconds_f();
  t.records_per_sec = static_cast<double>(n) / t.elapsed_sec;
  t.scpu_busy_frac =
      (rig.device.busy_time() - busy0).to_seconds_f() / t.elapsed_sec;
  return t;
}

/// Same burst shipped through WormStore::write_batch (kWriteBatch crossings,
/// `batch` requests queued per submission).
inline Throughput measure_batched_writes(BenchRig& rig, std::size_t size,
                                         std::size_t n, core::WitnessMode mode,
                                         std::size_t batch) {
  common::Bytes payload(size, 0x5a);
  core::Attr attr;
  attr.retention = common::Duration::years(5);

  common::SimTime t0 = rig.clock.now();
  common::Duration busy0 = rig.device.busy_time();
  std::size_t done = 0;
  while (done < n) {
    std::size_t take = std::min(batch, n - done);
    std::vector<core::WriteRequest> queue(
        take, {.payloads = {payload}, .attr = attr, .mode = mode});
    (void)rig.store.write_batch(queue);
    done += take;
  }
  Throughput t;
  t.elapsed_sec = (rig.clock.now() - t0).to_seconds_f();
  t.records_per_sec = static_cast<double>(n) / t.elapsed_sec;
  t.scpu_busy_frac =
      (rig.device.busy_time() - busy0).to_seconds_f() / t.elapsed_sec;
  return t;
}

/// Latency percentile over per-op samples (`p` in [0,100]). Sorts a copy;
/// fine at bench sample counts.
inline double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, samples.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

/// One machine-readable result row. Latencies are microseconds; zero-valued
/// optional fields are omitted from the JSON.
struct BenchRow {
  std::string op;
  std::size_t threads = 1;
  double throughput_ops_s = 0;
  double p50_us = 0;
  double p99_us = 0;
};

/// Writes rows to BENCH_<name>.json in the working directory so harnesses
/// can diff results across commits without scraping stdout.
inline void write_bench_json(const std::string& name,
                             const std::vector<BenchRow>& rows) {
  std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n", name.c_str());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"threads\": %zu, "
                 "\"throughput_ops_s\": %.2f",
                 r.op.c_str(), r.threads, r.throughput_ops_s);
    if (r.p50_us > 0) std::fprintf(f, ", \"p50_us\": %.3f", r.p50_us);
    if (r.p99_us > 0) std::fprintf(f, ", \"p99_us\": %.3f", r.p99_us);
    std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\n[wrote %s]\n", path.c_str());
}

/// Dumps the store's named counters (operation counts + mailbox transport
/// metrics) in a stable two-column form, via the typed snapshot.
inline void print_counters(const core::WormStore& store) {
  for (const auto& [name, value] : store.counters_snapshot().as_map()) {
    std::printf("  %-24s %llu\n", std::string(name).c_str(),
                static_cast<unsigned long long>(value));
  }
}

/// Cluster-level twin: the router's aggregated snapshot ("shard.<i>.<key>"
/// per shard plus summed "cluster.<key>" totals).
inline void print_cluster_counters(const cluster::ClusterCounters& counters) {
  for (const auto& [name, value] : counters.as_map()) {
    std::printf("  %-36s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }
}

/// Record count that keeps memory and wall time bounded across sizes.
inline std::size_t records_for_size(std::size_t size) {
  std::size_t n = (48u << 20) / size;
  if (n > 400) n = 400;
  if (n < 24) n = 24;
  return n;
}

inline void print_header(const std::string& title, const std::string& paper) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper reference: %s\n", paper.c_str());
  std::printf("================================================================\n");
}

}  // namespace worm::bench
