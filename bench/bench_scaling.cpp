// §5 scaling claim: "These results naturally scale if multiple SCPUs are
// available." Each SCPU fronts an independent shard (its own serial-number
// space and VRDT); writes are sprayed round-robin. Aggregate throughput is
// total records over the *slowest* shard's burst time.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"

using namespace worm;

int main() {
  bench::print_header(
      "Multi-SCPU scaling — aggregate deferred-512 throughput, 1KB records",
      "§5: >2500 tx/s with one SCPU; results 'naturally scale' with more");

  std::printf("%6s %16s %10s\n", "scpus", "aggregate", "speedup");
  double base = 0;
  for (std::size_t k = 1; k <= 8; k *= 2) {
    std::vector<std::unique_ptr<bench::BenchRig>> shards;
    for (std::size_t i = 0; i < k; ++i) {
      core::FirmwareConfig fw = bench::bench_fw_config();
      fw.seed = 0x574f524d + i;  // distinct key material per device
      core::StoreConfig sc;
      sc.default_mode = core::WitnessMode::kDeferred;
      sc.hash_mode = core::HashMode::kHostHash;
      sc.store_id = i + 1;
      shards.push_back(std::make_unique<bench::BenchRig>(fw, sc));
    }

    const std::size_t total = 400 * k;
    common::Bytes payload(1024, 0x5a);
    core::Attr attr;
    attr.retention = common::Duration::years(5);
    for (std::size_t i = 0; i < total; ++i) {
      (void)shards[i % k]->store.write({.payloads = {payload},
                                        .attr = attr,
                                        .mode = core::WitnessMode::kDeferred});
    }
    double slowest = 0;
    for (auto& s : shards) {
      slowest = std::max(slowest, static_cast<double>(s->clock.now().ns) / 1e9);
    }
    double rate = static_cast<double>(total) / slowest;
    if (base == 0) base = rate;
    std::printf("%6zu %12.0f rec/s %9.2fx\n", k, rate, rate / base);
  }
  std::printf("\nShards are independent stores (separate SN spaces); the paper's\n"
              "'natural scaling' is linear because the SCPU is the only shared-\n"
              "nothing bottleneck in the write path.\n");
  return 0;
}
