// §4.3 ablation: "determine the maximum signature strength we can afford for
// a given throughput update rate". Sweeps the short-lived key strength and
// reports burst throughput, idle-time strengthening rate, and the maximum
// burst a given security lifetime can absorb before the strengthening
// backlog would violate it.
#include <cstdio>

#include "bench_util.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"

using namespace worm;

int main() {
  bench::print_header(
      "Deferred-strength ablation — burst rate vs short-key strength, and "
      "strengthening economics",
      "§4.3: 512-bit constructs resist 60-180 min; strength/throughput "
      "trade-off governed by sign cost ~ bits^3");

  std::printf("%12s %14s %18s %22s\n", "short bits", "burst rec/s",
              "strengthen rec/s", "max 60-min burst len");
  for (std::size_t bits : {512u, 640u, 768u, 896u, 1024u}) {
    core::FirmwareConfig fw = bench::bench_fw_config();
    fw.short_bits = bits;
    core::StoreConfig sc;
    sc.default_mode = core::WitnessMode::kDeferred;
    sc.hash_mode = core::HashMode::kHostHash;
    sc.idle_batch = 64;
    bench::BenchRig rig(fw, sc);

    const std::size_t n = 256;
    auto burst =
        bench::measure_writes(rig, 1024, n, core::WitnessMode::kDeferred);

    // Drain the strengthening backlog and measure the idle-time rate. Bounded
    // (one idle_batch-sized crossing per iteration, plus slack for audit and
    // compaction rotations): a backlog that fails to shrink is a liveness bug
    // this bench must crash on, not spin through.
    common::SimTime t0 = rig.clock.now();
    bool drained = common::bounded_drain(
        [&] {
          if (rig.firmware.deferred_count() == 0) return false;
          rig.store.pump_idle();
          return rig.firmware.deferred_count() > 0;
        },
        n / sc.idle_batch + 64);
    WORM_CHECK(drained, "bench_deferred: strengthening backlog never drained");
    double drain_sec = (rig.clock.now() - t0).to_seconds_f();
    double strengthen_rate = static_cast<double>(n) / drain_sec;

    // A burst of B records at rate R lasts B/R seconds; every record must be
    // strengthened within `lifetime` of its signature. Worst case, the whole
    // backlog must drain within the lifetime: B <= strengthen_rate*lifetime.
    double max_burst = strengthen_rate * 3600.0;
    std::printf("%12zu %11.0f %15.0f %22.0f\n", bits, burst.records_per_sec,
                strengthen_rate, max_burst);
  }

  std::printf(
      "\nhmac mode (same pipeline, MAC witnesses): burst rate below —\n");
  {
    core::StoreConfig sc;
    sc.default_mode = core::WitnessMode::kHmac;
    sc.hash_mode = core::HashMode::kHostHash;
    bench::BenchRig rig(bench::bench_fw_config(), sc);
    auto t = bench::measure_writes(rig, 1024, 400, core::WitnessMode::kHmac);
    std::printf("%12s %11.0f rec/s (paper: 'practically unlimited, bus-"
                "limited')\n", "hmac", t.records_per_sec);
  }

  std::printf(
      "\nReading: burst throughput falls ~cubically with key strength (sign\n"
      "cost ~ bits^3), while strengthening throughput is fixed by the strong\n"
      "key — the trade is burst capacity against backlog lifetime, exactly\n"
      "the §4.3 knob.\n");
  return 0;
}
