// Table 2 reproduction: primitive crypto rates of the (simulated) IBM 4764
// SCPU vs the P4 @ 3.4 GHz host. Two columns per row:
//   * model  — the calibrated cost model's rate (reproduces the paper's
//              measurements exactly; this is what every other experiment is
//              built on), and
//   * local  — wall-clock rate of this repo's from-scratch crypto on the
//              build machine (context only; absolute values depend on your
//              CPU).
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha1.hpp"

namespace {

using namespace worm;
using Clock = std::chrono::steady_clock;

double wall_seconds(const std::function<void()>& fn) {
  auto t0 = Clock::now();
  fn();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double measure_sign_rate(std::size_t bits) {
  const auto& key = scpu::cached_rsa_key(0xb42c, bits);
  common::Bytes msg = common::to_bytes("table2 message");
  int n = bits >= 2048 ? 40 : (bits >= 1024 ? 150 : 400);
  double secs = wall_seconds([&] {
    for (int i = 0; i < n; ++i) {
      msg[0] = static_cast<std::uint8_t>(i);
      (void)crypto::rsa_sign(key, msg);
    }
  });
  return n / secs;
}

double measure_sha1_mbps(std::size_t block) {
  common::Bytes data(block, 0xab);
  std::size_t total = 64u << 20;
  std::size_t calls = total / block;
  double secs = wall_seconds([&] {
    crypto::Sha1 h;
    for (std::size_t i = 0; i < calls; ++i) {
      h.update(data);
      if (block <= 65536) (void)h.finalize();  // per-block API call semantics
    }
  });
  return static_cast<double>(total) / 1e6 / secs;
}

void print_rsa_row(const char* label, std::size_t bits, const char* paper_scpu,
                   const char* paper_host) {
  auto scpu = scpu::CostModel::ibm4764();
  auto host = scpu::CostModel::host_p4();
  std::printf("%-22s | %9.0f/s (paper %9s) | %8.0f/s (paper %7s) | local %8.0f/s\n",
              label, 1.0 / scpu.sign_cost(bits).to_seconds_f(), paper_scpu,
              1.0 / host.sign_cost(bits).to_seconds_f(), paper_host,
              measure_sign_rate(bits));
}

void print_sha_row(const char* label, std::size_t block, const char* paper_scpu,
                   const char* paper_host) {
  auto scpu = scpu::CostModel::ibm4764();
  auto host = scpu::CostModel::host_p4();
  double scpu_mbps = static_cast<double>(block) /
                     scpu.hash_cost(block, block).to_seconds_f() / 1e6;
  double host_mbps = static_cast<double>(block) /
                     host.hash_cost(block, block).to_seconds_f() / 1e6;
  std::printf("%-22s | %6.2f MB/s (paper %8s) | %6.1f MB/s (paper %8s) | local %7.1f MB/s\n",
              label, scpu_mbps, paper_scpu, host_mbps, paper_host,
              measure_sha1_mbps(block));
}

}  // namespace

int main() {
  bench::print_header(
      "Table 2 — crypto primitive rates: IBM 4764 (model) vs P4 host (model) "
      "vs this machine's scratch crypto (local)",
      "Table 2: RSA 512/1024/2048 sig/s; SHA-1 MB/s at 1KB/64KB; DMA MB/s");

  std::printf("%-22s | %-34s | %-30s |\n", "function/context", "SCPU (IBM 4764)",
              "host (P4 @ 3.4GHz)");
  print_rsa_row("RSA sig, 512 bits", 512, "4200/s", "1315/s");
  print_rsa_row("RSA sig, 1024 bits", 1024, "848/s", "261/s");
  print_rsa_row("RSA sig, 2048 bits", 2048, "316-470", "43/s");
  print_sha_row("SHA-1, 1 KB blocks", 1024, "1.42", "80");
  print_sha_row("SHA-1, 64 KB blocks", 65536, "18.6", "120+");

  auto scpu = scpu::CostModel::ibm4764();
  auto host = scpu::CostModel::host_p4();
  std::printf("%-22s | %6.1f MB/s (paper  75-90  ) | %6.0f MB/s (paper    1+ GB) |\n",
              "DMA xfer end-to-end",
              1.0 / scpu.dma_cost(1'000'000).to_seconds_f(),
              1.0 / host.dma_cost(1'000'000).to_seconds_f());

  std::printf("\nModel column reproduces the paper's Table 2 by construction;\n"
              "the 'local' column shows this repository's from-scratch RSA/SHA\n"
              "running on the build machine for sanity.\n");
  return 0;
}
