// §4.2.2 Retention Monitor overhead claim: "As common retention rates are of
// the order of years, we expect this to not add any additional overhead in
// practice." The RM sleeps until the next VEXP expiry and signs one deletion
// proof per expiring record; this bench measures the SCPU utilization that
// deletion signing alone imposes at increasing expiry rates.
#include <cstdio>

#include "bench_util.hpp"
#include "crypto/drbg.hpp"

using namespace worm;

int main() {
  bench::print_header(
      "Retention Monitor overhead — SCPU utilization from deletion signing",
      "§4.2.2: VEXP-alarm-driven deletion; expected negligible at realistic "
      "expiry rates");

  std::printf("%18s %14s %16s %14s\n", "expiries/hour", "deletions",
              "SCPU busy share", "headroom");
  for (std::size_t per_hour : {10u, 100u, 1'000u, 10'000u, 100'000u}) {
    core::FirmwareConfig fw = bench::bench_fw_config();
    fw.heartbeat_interval = common::Duration::hours(12);
    core::StoreConfig sc;
    sc.default_mode = core::WitnessMode::kDeferred;
    sc.hash_mode = core::HashMode::kHostHash;
    sc.compaction_min_run = SIZE_MAX;  // isolate pure deletion cost
    bench::BenchRig rig(fw, sc);
    crypto::Drbg rng(per_hour);

    // Spread `per_hour` expirations uniformly across one hour.
    common::Bytes payload(256, 0x5a);
    const std::size_t n = per_hour;
    for (std::size_t i = 0; i < n; ++i) {
      core::Attr attr;
      attr.retention = common::Duration::nanos(
          static_cast<std::int64_t>(rng.uniform(3'600'000'000'000ull)) +
          3'600'000'000'000ll);  // expires within [1h, 2h)
      (void)rig.store.write({.payloads = {payload},
                             .attr = attr,
                             .mode = core::WitnessMode::kDeferred});
    }

    common::SimTime t0 = rig.clock.now();
    common::Duration busy0 = rig.device.busy_time();
    // Step through the window pumping idle duties as a live host would —
    // at high rates the secure-memory-bounded VEXP needs rebuild scans.
    while (rig.clock.now() < common::SimTime::epoch() +
                                 common::Duration::hours(2)) {
      rig.clock.advance(common::Duration::minutes(5));
      rig.store.pump_idle();
    }
    double window = (rig.clock.now() - t0).to_seconds_f();
    double busy = (rig.device.busy_time() - busy0).to_seconds_f();
    std::printf("%18zu %14llu %15.3f%% %13.0fx\n", per_hour,
                static_cast<unsigned long long>(rig.firmware.counters().deletions),
                100 * busy / window, window / busy);
  }

  std::printf(
      "\nReading: even at 100k expirations/hour — far beyond 'retention\n"
      "measured in years' — deletion proofs consume a few percent of the\n"
      "SCPU. At realistic rates the monitor is effectively free, as §4.2.2\n"
      "expects. The hard ceiling is one 1024-bit signature per deletion\n"
      "(848/s, i.e. ~3M deletions/hour).\n");
  return 0;
}
