// §4.2.1 storage-reduction ablation: VRDT footprint under out-of-order
// expiry, with multi-window compaction on vs off. Records carry mixed
// retention periods (different regulations sharing one store), so deletion
// proofs accumulate in contiguous runs that compaction collapses into
// signed window-bound pairs.
#include <cstdio>

#include "bench_util.hpp"
#include "crypto/drbg.hpp"

using namespace worm;

namespace {

struct Result {
  std::size_t entries = 0;
  std::size_t windows = 0;
  std::size_t bytes = 0;
  std::uint64_t scpu_sigs = 0;
};

Result run(bool compaction_enabled, std::size_t n_records) {
  core::FirmwareConfig fw = bench::bench_fw_config();
  fw.heartbeat_interval = common::Duration::hours(6);
  core::StoreConfig sc;
  sc.default_mode = core::WitnessMode::kDeferred;
  sc.hash_mode = core::HashMode::kHostHash;
  sc.compaction_min_run = compaction_enabled ? 3 : SIZE_MAX;
  bench::BenchRig rig(fw, sc);

  crypto::Drbg rng(0xc0ffee);
  common::Bytes payload(256, 0x5a);
  for (std::size_t i = 0; i < n_records; ++i) {
    core::Attr attr;
    // Mixed regulations: most records expire within 1-50 hours, a sprinkle
    // retain for a year (these pin the windows apart).
    attr.retention = (i % 23 == 0)
                         ? common::Duration::years(1)
                         : common::Duration::hours(
                               1 + static_cast<std::int64_t>(rng.uniform(50)));
    (void)rig.store.write({.payloads = {payload}, .attr = attr});
  }
  // Let everything short-lived expire, pumping idle duties as a host would.
  for (int step = 0; step < 60; ++step) {
    rig.clock.advance(common::Duration::hours(1));
    while (rig.store.pump_idle()) {
    }
  }
  Result r;
  r.entries = rig.store.vrdt().entry_count();
  r.windows = rig.store.vrdt().window_count();
  r.bytes = rig.store.vrdt().storage_bytes();
  return r;
}

}  // namespace

int main() {
  bench::print_header(
      "Window compaction — VRDT footprint under out-of-order expiry",
      "§4.2.1: contiguous runs of >= 3 expired records collapse into signed "
      "lower/upper bound pairs");

  std::printf("%10s | %32s | %32s\n", "", "compaction OFF", "compaction ON");
  std::printf("%10s | %10s %8s %10s | %10s %8s %10s\n", "records", "entries",
              "windows", "bytes", "entries", "windows", "bytes");
  for (std::size_t n : {500u, 2000u, 8000u}) {
    Result off = run(false, n);
    Result on = run(true, n);
    std::printf("%10zu | %10zu %8zu %10zu | %10zu %8zu %10zu\n", n,
                off.entries, off.windows, off.bytes, on.entries, on.windows,
                on.bytes);
  }
  std::printf("\nReading: without compaction the VRDT keeps one deletion proof\n"
              "per expired record forever (until the base passes it); with\n"
              "compaction, runs collapse to two signatures each and the long-\n"
              "retention records are all that remain.\n");
  return 0;
}
