// §5 I/O-domination claim: "Typical high-speed enterprise disks feature
// 3-4ms+ latencies for individual block disk access, twice the projected
// average SCPU overheads — these can become dominant, especially when
// considering fragmentation and entire multi-block file accesses."
//
// This bench decomposes per-record write cost into WORM-layer time (SCPU +
// host hashing) vs disk time, with the paper's enterprise-disk latency model
// on and off.
#include <cstdio>

#include "bench_util.hpp"

using namespace worm;

namespace {

void run(const char* label, core::WitnessMode mode, core::HashMode hash) {
  std::printf("\n-- %s --\n", label);
  std::printf("%10s %16s %16s %14s %12s\n", "size", "no-disk rec/s",
              "with-disk rec/s", "worm ms/rec", "disk ms/rec");
  for (std::size_t size : {1024u, 8192u, 65536u, 262144u, 1048576u}) {
    core::StoreConfig sc;
    sc.default_mode = mode;
    sc.hash_mode = hash;
    std::size_t n = bench::records_for_size(size);

    bench::BenchRig fast(bench::bench_fw_config(), sc,
                         storage::LatencyModel::none());
    auto t_fast = bench::measure_writes(fast, size, n, mode);

    bench::BenchRig slow(bench::bench_fw_config(), sc,
                         storage::LatencyModel::enterprise_disk_2008());
    auto t_slow = bench::measure_writes(slow, size, n, mode);

    double worm_ms = 1e3 / t_fast.records_per_sec;
    double total_ms = 1e3 / t_slow.records_per_sec;
    std::printf("%9zuK %13.0f %16.0f %14.2f %12.2f\n", size / 1024,
                t_fast.records_per_sec, t_slow.records_per_sec, worm_ms,
                total_ms - worm_ms);
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Disk-bound analysis — WORM layer vs enterprise-disk I/O (3.5ms seek, "
      "80MB/s transfer, 64KB blocks)",
      "§5: disk seek latency is ~2x the average SCPU overhead and dominates "
      "multi-block accesses");

  run("strong + host-hash (sustained mode)", core::WitnessMode::kStrong,
      core::HashMode::kHostHash);
  run("deferred-512 (burst mode)", core::WitnessMode::kDeferred,
      core::HashMode::kHostHash);

  std::printf("\nReading: once the disk model is on, per-record disk time exceeds\n"
              "the whole WORM layer for every record size, and by 10-30x for\n"
              "multi-block records — the WORM layer is not the bottleneck.\n");
  return 0;
}
