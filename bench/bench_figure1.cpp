// Figure 1 reproduction: WORM write throughput vs record size, one series
// per witnessing configuration (§4.2.2 write models x §4.3 optimizations):
//
//   strong+scpu-hash : permanent 1024-bit signatures, SCPU reads & hashes
//                      the data itself (strictest model),
//   strong+host-hash : permanent signatures, host-computed hash audited
//                      later ("slightly weaker security model", §4.2.2),
//   deferred-512     : short-lived 512-bit signatures during the burst
//                      (strengthened during idle) — the paper's 2000-2500
//                      records/s headline,
//   hmac             : SCPU-keyed MACs, "practically unlimited" (§4.3).
//
// The paper reports 450-500 records/s sustained (strong) and 2000-2500
// records/s in bursts (deferred); both fall out of the Table 2-calibrated
// cost model below.
#include <cstdio>

#include "bench_util.hpp"

using namespace worm;

int main() {
  bench::print_header(
      "Figure 1 — throughput vs record size (records/second, simulated)",
      "Figure 1: deferred ~2000-2500 rec/s, strong ~450-500 rec/s, both "
      "declining with record size");

  struct Series {
    const char* name;
    core::WitnessMode mode;
    core::HashMode hash;
  };
  const Series series[] = {
      {"strong+scpu-hash", core::WitnessMode::kStrong, core::HashMode::kScpuHash},
      {"strong+host-hash", core::WitnessMode::kStrong, core::HashMode::kHostHash},
      {"deferred-512", core::WitnessMode::kDeferred, core::HashMode::kHostHash},
      {"hmac", core::WitnessMode::kHmac, core::HashMode::kHostHash},
  };

  std::printf("%10s", "size");
  for (const auto& s : series) std::printf(" %18s", s.name);
  std::printf("\n");

  for (std::size_t size = 1024; size <= (1u << 20); size *= 2) {
    std::printf("%9zuK", size / 1024);
    for (const auto& s : series) {
      core::StoreConfig sc;
      sc.default_mode = s.mode;
      sc.hash_mode = s.hash;
      bench::BenchRig rig(bench::bench_fw_config(), sc);
      auto t = bench::measure_writes(rig, size, bench::records_for_size(size),
                                     s.mode);
      std::printf(" %12.0f rec/s", t.records_per_sec);
    }
    std::printf("\n");
  }

  // Utilization note at the paper's headline point.
  {
    core::StoreConfig sc;
    sc.default_mode = core::WitnessMode::kDeferred;
    sc.hash_mode = core::HashMode::kHostHash;
    bench::BenchRig rig(bench::bench_fw_config(), sc);
    auto t = bench::measure_writes(rig, 1024, 400, core::WitnessMode::kDeferred);
    std::printf(
        "\nheadline point: deferred-512 @ 1KB records = %.0f rec/s "
        "(paper: 2000-2500), SCPU busy %.0f%% of burst time\n",
        t.records_per_sec, 100 * t.scpu_busy_frac);
  }

  // Burst amortization: the same deferred 1KB burst shipped one command per
  // record vs queued through kWriteBatch. With the per-crossing PCI-X
  // transfer cost charged, batching must win from small batch sizes on —
  // each extra queued write saves one command round trip.
  {
    bench::print_header(
        "Figure 1 addendum — burst ingest, per-record vs batched crossings",
        "§4.1: the host amortizes access to the slow trusted device");
    const std::size_t kN = 400, kSize = 1024;
    core::StoreConfig sc;
    sc.default_mode = core::WitnessMode::kDeferred;
    sc.hash_mode = core::HashMode::kHostHash;
    bench::BenchRig base(bench::bench_fw_config(), sc);
    auto unbatched =
        bench::measure_writes(base, kSize, kN, core::WitnessMode::kDeferred);
    std::printf("%14s %14.0f rec/s  (%llu crossings)\n", "per-record",
                unbatched.records_per_sec,
                static_cast<unsigned long long>(
                    base.store.counters().at("mailbox.crossings")));
    for (std::size_t batch : {2u, 4u, 8u, 16u, 32u, 64u}) {
      bench::BenchRig rig(bench::bench_fw_config(), sc);
      auto t = bench::measure_batched_writes(rig, kSize, kN,
                                             core::WitnessMode::kDeferred, batch);
      std::printf("%9s %-4zu %14.0f rec/s  (%llu crossings, speedup %.2fx)\n",
                  "batch", batch, t.records_per_sec,
                  static_cast<unsigned long long>(
                      rig.store.counters().at("mailbox.crossings")),
                  t.records_per_sec / unbatched.records_per_sec);
    }
  }
  return 0;
}
