// Network front-end under load: 8 keep-alive clients over a Unix socket
// against one WormServer, open-loop target-QPS sweep on a 90/10 read/write
// mix, plus a deliberate overload phase against a 2-deep write queue.
//
// Unlike the simulation benches this measures REAL latency (the server's
// event loop, framing and sockets are real); the in-process read p50 is
// measured in the same binary for an apples-to-apples baseline.
//
// Exit-code gates (CI server-smoke):
//  * at every sustained target, remote read p99 < 10x the in-process read
//    p50 (floored at 200us — below that loopback scheduling noise
//    dominates; see the comment at the bound);
//  * the overload phase must see kBusy rejections while reads keep being
//    served — backpressure must reach the wire instead of stalling the loop.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "server/client/worm_client.hpp"
#include "server/worm_server.hpp"

using namespace worm;

namespace {

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

core::StoreConfig server_store_config(std::size_t queue_capacity) {
  core::StoreConfig sc;
  sc.default_mode = core::WitnessMode::kDeferred;
  sc.hash_mode = core::HashMode::kHostHash;
  sc.pipeline.enabled = true;
  sc.pipeline.queue_capacity = queue_capacity;
  return sc;
}

core::WriteRequest make_record(const common::Bytes& payload) {
  core::WriteRequest w;
  w.payloads = {payload};
  w.attr.retention = common::Duration::years(5);
  return w;
}

struct Deployment {
  explicit Deployment(std::size_t queue_capacity)
      : rig(bench::bench_fw_config(), server_store_config(queue_capacity)),
        path("/tmp/bench_worm_server." + std::to_string(getpid()) + "." +
             std::to_string(instance++) + ".sock") {
    auth.add("bench", common::to_bytes("bench-secret"));
    server::ServerConfig cfg;
    cfg.unix_path = path;
    cfg.loops = 2;
    server = std::make_unique<server::WormServer>(
        cfg, auth, [this](std::string_view principal) {
          return std::make_unique<core::WormSession>(
              rig.store, std::string(principal), rig.clock);
        });
    server->start();
  }
  ~Deployment() { server.reset(); }

  server::WormClient connect() {
    server::ClientConfig c;
    c.unix_path = path;
    c.principal = "bench";
    c.token = auth.mint("bench");
    return server::WormClient(std::move(c));
  }

  static int instance;
  bench::BenchRig rig;
  std::string path;
  server::AuthRegistry auth;
  std::unique_ptr<server::WormServer> server;
};

int Deployment::instance = 0;

struct MixResult {
  std::vector<double> read_us;
  std::vector<double> write_us;
  std::uint64_t busy = 0;
  std::uint64_t unavailable = 0;
  double elapsed_s = 0;
};

/// One open-loop client: requests depart on a fixed schedule (arrears are
/// not forgiven — a slow server accumulates backlog and its tail shows it).
MixResult run_client(Deployment& dep, double qps, std::size_t ops,
                     std::uint64_t seed, core::Sn seeded) {
  MixResult res;
  server::WormClient client = dep.connect();
  common::Bytes payload(1024, 0x5a);
  std::uint64_t rng = seed * 0x9e3779b97f4a7c15ull + 1;
  const double interval_us = 1e6 / qps;
  double start = now_us();
  for (std::size_t i = 0; i < ops; ++i) {
    double due = start + static_cast<double>(i) * interval_us;
    double now = now_us();
    if (now < due) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::micro>(due - now));
    }
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    double t0 = now_us();
    if (rng % 10 != 0) {  // 90% reads
      core::Sn sn = 1 + (rng >> 8) % seeded;
      core::ReadOutcome out = client.read(sn);
      if (out.status() == core::ReadStatus::kUnavailable) ++res.unavailable;
      res.read_us.push_back(now_us() - t0);
    } else {
      server::WriteResult w = client.write(make_record(payload));
      while (w.busy()) {
        ++res.busy;
        w = client.write(make_record(payload));
      }
      res.write_us.push_back(now_us() - t0);
    }
  }
  res.elapsed_s = (now_us() - start) / 1e6;
  return res;
}

}  // namespace

int main() {
  bench::print_header(
      "WormServer — 8 keep-alive clients, open-loop QPS sweep, 90/10 r/w "
      "(1KB)",
      "multi-tenant front-end: untrusted server, kBusy backpressure on the "
      "wire");

  std::vector<bench::BenchRow> rows;
  bool gates_ok = true;

  // --- in-process baseline -------------------------------------------------
  double inproc_p50;
  {
    bench::BenchRig rig(bench::bench_fw_config(), server_store_config(64));
    common::Bytes payload(1024, 0x5a);
    for (int i = 0; i < 64; ++i) {
      (void)rig.store.write(make_record(payload));
    }
    for (core::Sn sn = 1; sn <= 64; ++sn) (void)rig.store.read(sn);  // warm
    std::vector<double> us;
    us.reserve(4000);
    double loop_start = now_us();
    for (int i = 0; i < 4000; ++i) {
      double t0 = now_us();
      (void)rig.store.read(1 + static_cast<core::Sn>(i % 64));
      us.push_back(now_us() - t0);
    }
    double inproc_ops_s = 4000.0 / ((now_us() - loop_start) / 1e6);
    inproc_p50 = bench::percentile(us, 50);
    rows.push_back({"inproc_read", 1, inproc_ops_s, inproc_p50,
                    bench::percentile(us, 99)});
  }
  // Floor the baseline at 200us: a remote round trip costs at least two
  // context switches (client -> loop thread -> client), and on a shared
  // single-core CI box each is timeslice-scale. Below that the 10x bound
  // would gate kernel scheduling, not the server.
  double latency_bound = 10.0 * (inproc_p50 > 200.0 ? inproc_p50 : 200.0);
  std::printf("\nin-process read p50: %.1f us -> remote p99 bound %.1f us\n",
              inproc_p50, latency_bound);

  // --- keep-alive sweep ----------------------------------------------------
  constexpr std::size_t kClients = 8;
  std::printf("\n%10s %12s %12s %10s %10s %10s %8s\n", "target q/s",
              "achieved q/s", "reads", "r p50 us", "r p99 us", "w p99 us",
              "gate");
  {
    Deployment dep(/*queue_capacity=*/64);
    {  // seed records so reads have targets
      server::WormClient seeder = dep.connect();
      common::Bytes payload(1024, 0x5a);
      for (int i = 0; i < 64; ++i) {
        server::WriteResult w = seeder.write(make_record(payload));
        while (w.busy()) w = seeder.write(make_record(payload));
      }
    }
    for (double target : {2000.0, 6000.0, 12000.0}) {
      std::size_t ops_per_client =
          static_cast<std::size_t>(target / kClients * 2.5);  // ~2.5s
      std::vector<MixResult> results(kClients);
      std::vector<std::thread> threads;
      threads.reserve(kClients);
      for (std::size_t c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
          results[c] = run_client(dep, target / kClients, ops_per_client,
                                  c + 1, 64);
        });
      }
      for (auto& t : threads) t.join();

      std::vector<double> reads, writes;
      double max_elapsed = 0;
      std::size_t total_ops = 0;
      for (const auto& r : results) {
        reads.insert(reads.end(), r.read_us.begin(), r.read_us.end());
        writes.insert(writes.end(), r.write_us.begin(), r.write_us.end());
        if (r.elapsed_s > max_elapsed) max_elapsed = r.elapsed_s;
        total_ops += r.read_us.size() + r.write_us.size();
      }
      double achieved = static_cast<double>(total_ops) / max_elapsed;
      double rp50 = bench::percentile(reads, 50);
      double rp99 = bench::percentile(reads, 99);
      double wp99 = bench::percentile(writes, 99);
      bool sustained = achieved >= 0.90 * target;
      bool pass = !sustained || rp99 < latency_bound;
      if (!pass) gates_ok = false;
      std::printf("%10.0f %12.0f %12zu %10.1f %10.1f %10.1f %8s\n", target,
                  achieved, reads.size(), rp50, rp99, wp99,
                  !sustained ? "  (lag)" : pass ? "ok" : "FAIL");
      rows.push_back({"read_q" + std::to_string(static_cast<int>(target)),
                      kClients, achieved, rp50, rp99});
      rows.push_back({"write_q" + std::to_string(static_cast<int>(target)),
                      kClients, achieved, bench::percentile(writes, 50),
                      wp99});
    }
  }

  // --- overload: tiny queue, unpaced writers -------------------------------
  std::uint64_t busy_total = 0;
  std::uint64_t overload_reads = 0;
  {
    Deployment dep(/*queue_capacity=*/2);
    {
      server::WormClient seeder = dep.connect();
      common::Bytes payload(1024, 0x5a);
      server::WriteResult w = seeder.write(make_record(payload));
      while (w.busy()) w = seeder.write(make_record(payload));
    }
    std::atomic<std::uint64_t> busy{0};
    std::atomic<std::uint64_t> reads_served{0};
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
      threads.emplace_back([&dep, &busy, &reads_served] {
        server::WormClient client = dep.connect();
        common::Bytes payload(1024, 0x5a);
        for (int i = 0; i < 60; ++i) {
          server::WriteResult w = client.write(make_record(payload));
          while (w.busy()) {
            busy.fetch_add(1);
            // The loop must keep serving reads while refusing writes.
            (void)client.read(1);
            reads_served.fetch_add(1);
            w = client.write(make_record(payload));
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    busy_total = busy.load();
    overload_reads = reads_served.load();
    if (busy_total == 0) gates_ok = false;
    std::printf(
        "\noverload: %llu kBusy rejections, %llu reads served during "
        "overload %s\n",
        static_cast<unsigned long long>(busy_total),
        static_cast<unsigned long long>(overload_reads),
        busy_total > 0 ? "(gate ok)" : "(gate FAIL: no backpressure seen)");
    rows.push_back({"overload_busy_rejections", kClients,
                    static_cast<double>(busy_total), 0, 0});
  }

  std::printf(
      "\nReading: the remote read tail stays within one order of magnitude\n"
      "of the in-process read (framing + two socket hops + a 1ms poll\n"
      "cadence), and a saturated write pipeline surfaces as explicit kBusy\n"
      "answers the client paces against — the event loop itself never\n"
      "stalls, so reads keep flowing at full speed during write overload.\n");
  bench::write_bench_json("server", rows);
  if (!gates_ok) {
    std::printf("\nGATE FAILURE (see above)\n");
    return 1;
  }
  return 0;
}
