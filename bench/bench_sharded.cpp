// Sharded scale-out: aggregate write throughput at 1/2/4 shards. Each shard
// is a full deployment — its own simulated SCPU, journal, record store, and
// group-commit pipeline — behind one global SN space partitioned by
// cluster::ShardMap. §4.1's arithmetic caps a single SCPU's write rate at
// crossings-per-record times the 25us command overhead; sharding is the only
// lever past that ceiling, because the crossings of different shards burn
// different SCPUs' time.
//
// Methodology: one driver thread round-robins the burst through
// ShardRouter::write_async. Every rig has its own SimClock, so the serial
// time each shard charges accrues on its own clock — exactly the parallel
// deployment's behavior — and the admission-side host hash is accounted to
// the owning shard. Aggregate makespan is the slowest shard's total;
// aggregate throughput is total records over that makespan. The per-shard
// counters come from the cluster-level aggregation
// (ShardRouter::counters_snapshot), which also cross-checks that no record
// was lost or double-counted.
//
// Exit code is a regression gate: 4-shard aggregate throughput must be
// >= 2.5x the 1-shard baseline (ISSUE/ROADMAP acceptance), and the summed
// cluster.store.writes counter must equal the records driven.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "cluster/shard_map.hpp"
#include "cluster/shard_router.hpp"
#include "worm/session.hpp"

using namespace worm;

namespace {

constexpr std::size_t kPayload = 8192;
constexpr std::size_t kOps = 512;    // total records per row, all shard counts
constexpr std::size_t kWindow = 64;  // tickets in flight before a collect
constexpr core::Sn kSpan = 1u << 20;  // per-shard SN span (far above kOps)

core::StoreConfig sharded_config() {
  core::StoreConfig sc;
  sc.default_mode = core::WitnessMode::kHmac;  // §4.3 burst mode
  sc.hash_mode = core::HashMode::kHostHash;    // admission-side hashing
  sc.pipeline.enabled = true;
  sc.pipeline.max_batch = 16;
  sc.pipeline.queue_capacity = 256;
  return sc;
}

struct ShardedResult {
  double throughput = 0;  // modeled records/s, aggregate
  std::uint64_t cluster_writes = 0;  // summed store.writes across shards
};

ShardedResult run_sharded(std::size_t n_shards) {
  std::vector<std::unique_ptr<bench::BenchRig>> rigs;
  rigs.reserve(n_shards);
  for (std::size_t i = 0; i < n_shards; ++i) {
    rigs.push_back(std::make_unique<bench::BenchRig>(bench::bench_fw_config(),
                                                     sharded_config()));
  }
  cluster::ShardRouter router(
      cluster::ShardMap::uniform(static_cast<cluster::ShardId>(n_shards),
                                 kSpan),
      [&](cluster::ShardId shard) {
        bench::BenchRig& rig = *rigs[shard];
        return std::make_unique<core::WormSession>(rig.store, "bench",
                                                   rig.clock);
      });

  common::Bytes payload(kPayload, 0x5a);
  core::Attr attr;
  attr.retention = common::Duration::years(5);
  const common::Duration hash_cost =
      rigs[0]->store.config().host_model.hash_cost(kPayload);

  std::vector<common::Duration> serial0(n_shards);
  for (std::size_t i = 0; i < n_shards; ++i) {
    serial0[i] = rigs[i]->clock.total_charged();
  }

  std::vector<cluster::RoutedTicket> window;
  window.reserve(kWindow);
  std::vector<std::size_t> ops_on(n_shards, 0);
  auto collect = [&] {
    for (cluster::RoutedTicket& t : window) (void)t.get();
    window.clear();
  };
  for (std::size_t i = 0; i < kOps; ++i) {
    cluster::RoutedTicket t =
        router.write_async({.payloads = {payload}, .attr = attr});
    ++ops_on[t.shard()];
    window.push_back(std::move(t));
    if (window.size() >= kWindow) collect();
  }
  collect();
  router.drain_writes();

  // Per-shard makespan: serial time charged on that shard's own clock plus
  // the admission hashes its host ran. The aggregate finishes when the
  // slowest shard does.
  common::Duration slowest{};
  for (std::size_t i = 0; i < n_shards; ++i) {
    common::Duration makespan = rigs[i]->clock.total_charged() - serial0[i] +
                                hash_cost * static_cast<std::int64_t>(ops_on[i]);
    slowest = std::max(slowest, makespan);
  }

  ShardedResult r;
  r.throughput = static_cast<double>(kOps) / slowest.to_seconds_f();
  cluster::ClusterCounters counters =
      router.counters_snapshot(core::CounterFlush::kSettled);
  r.cluster_writes = counters.as_map().at("cluster.store.writes");
  if (n_shards == 4) {
    std::printf("\n  cluster counters at 4 shards (store.* only):\n");
    for (const auto& [name, value] : counters.as_map()) {
      if (name.find("store.writes") != std::string::npos ||
          name.find("write_pipeline.batches") != std::string::npos) {
        std::printf("    %-36s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      }
    }
  }
  return r;
}

}  // namespace

int main() {
  bench::print_header(
      "Sharded multi-SCPU scale-out — aggregate write throughput (8KB)",
      "one SCPU's crossings cap the write rate; N shards burn N SCPUs' "
      "time in parallel behind one SN space");

  std::printf("%-22s %8s %16s %10s\n", "op", "shards", "modeled rec/s",
              "speedup");

  std::vector<bench::BenchRow> rows;
  double base = 0;
  double at4 = 0;
  bool counters_ok = true;
  for (std::size_t n : {1u, 2u, 4u}) {
    ShardedResult r = run_sharded(n);
    if (n == 1) base = r.throughput;
    if (n == 4) at4 = r.throughput;
    counters_ok = counters_ok && r.cluster_writes == kOps;
    std::printf("%-22s %8zu %16.0f %9.2fx\n", "sharded_write", n,
                r.throughput, r.throughput / base);
    rows.push_back({"sharded_write", n, r.throughput, 0, 0});
  }

  bench::write_bench_json("sharded", rows);

  double scaling = at4 / base;
  std::printf("\n4-shard scaling: %.2fx over 1 shard (gate: >= 2.5x); "
              "cluster counters %s\n",
              scaling, counters_ok ? "consistent" : "INCONSISTENT");
  return (scaling >= 2.5 && counters_ok) ? 0 : 1;
}
