// Wall-clock microbenchmarks (google-benchmark) of the from-scratch crypto
// substrate on the build machine. These are NOT paper reproductions — the
// paper's numbers come from the calibrated cost model (bench_table2) — but
// they keep the scratch implementations honest and catch performance
// regressions in the BigUInt/SHA/ChaCha layers everything sits on.
#include <benchmark/benchmark.h>

#include "crypto/biguint.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/chained_hash.hpp"
#include "crypto/drbg.hpp"
#include "crypto/hmac.hpp"
#include "crypto/merkle.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"
#include "scpu/key_cache.hpp"

namespace {

using namespace worm;
using common::Bytes;

void BM_Sha256(benchmark::State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(1024)->Arg(65536);

void BM_Sha1(benchmark::State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha1::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(1024)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  Bytes key(32, 0x11);
  Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::HmacSha256::mac(key, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(1024)->Arg(65536);

void BM_ChaCha20(benchmark::State& state) {
  crypto::ChaCha20::Key key{};
  crypto::ChaCha20::Nonce nonce{};
  Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::ChaCha20::crypt(key, nonce, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(65536);

void BM_RsaSign(benchmark::State& state) {
  const auto& key =
      scpu::cached_rsa_key(0xbe7c, static_cast<std::size_t>(state.range(0)));
  Bytes msg = common::to_bytes("benchmark message");
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_sign(key, msg));
  }
}
BENCHMARK(BM_RsaSign)->Arg(512)->Arg(1024)->Arg(2048)->Unit(benchmark::kMicrosecond);

void BM_RsaVerify(benchmark::State& state) {
  const auto& key =
      scpu::cached_rsa_key(0xbe7c, static_cast<std::size_t>(state.range(0)));
  Bytes msg = common::to_bytes("benchmark message");
  Bytes sig = crypto::rsa_sign(key, msg);
  crypto::RsaPublicKey pub = key.public_key();
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_verify(pub, msg, sig));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(512)->Arg(1024)->Arg(2048)->Unit(benchmark::kMicrosecond);

void BM_BigUIntModExp(benchmark::State& state) {
  crypto::Drbg rng(1);
  std::size_t bits = static_cast<std::size_t>(state.range(0));
  crypto::BigUInt m = rng.big_with_bits(bits);
  if (m.is_even()) m = m + crypto::BigUInt(1);
  crypto::BigUInt base = rng.big_below(m);
  crypto::BigUInt exp = rng.big_with_bits(bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::BigUInt::mod_exp(base, exp, m));
  }
}
BENCHMARK(BM_BigUIntModExp)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_BigUIntMul(benchmark::State& state) {
  crypto::Drbg rng(2);
  std::size_t bits = static_cast<std::size_t>(state.range(0));
  crypto::BigUInt a = rng.big_with_bits(bits);
  crypto::BigUInt b = rng.big_with_bits(bits);
  bool karatsuba = state.range(1) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(karatsuba
                                 ? crypto::BigUInt::mul_karatsuba(a, b)
                                 : crypto::BigUInt::mul_schoolbook(a, b));
  }
}
BENCHMARK(BM_BigUIntMul)
    ->ArgsProduct({{2048, 4096, 8192}, {0, 1}})
    ->ArgNames({"bits", "karatsuba"});

void BM_ChainedHashAdd(benchmark::State& state) {
  Bytes seg(1024, 0xcd);
  crypto::ChainedHash chain;
  for (auto _ : state) {
    chain.add(seg);
    benchmark::DoNotOptimize(chain.digest());
  }
  state.SetBytesProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ChainedHashAdd);

void BM_MerkleAppend(benchmark::State& state) {
  crypto::MerkleTree tree;
  Bytes leaf(64, 0xee);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.append(leaf));
  }
}
BENCHMARK(BM_MerkleAppend);

void BM_MerkleUpdateAt64k(benchmark::State& state) {
  crypto::MerkleTree tree;
  Bytes leaf(64, 0xee);
  for (int i = 0; i < 65536; ++i) tree.append(leaf);
  for (auto _ : state) {
    tree.update(32768, leaf);
    benchmark::DoNotOptimize(tree.root());
  }
}
BENCHMARK(BM_MerkleUpdateAt64k);

}  // namespace

BENCHMARK_MAIN();
