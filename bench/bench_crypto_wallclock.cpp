// Wall-clock microbenchmarks of the from-scratch crypto substrate on the
// build machine. These are NOT paper reproductions — the paper's numbers
// come from the calibrated cost model (bench_table2) — but they keep the
// scratch implementations honest and, unlike the old google-benchmark
// harness, they emit the same BENCH_*.json rows as the system benches AND
// enforce the fast-path speedup gates with their exit code:
//
//   * SHA-256 dispatched backend vs the portable reference — >= 2.0x on
//     hosts with the SHA extensions, else the unrolled scalar path >= 1.2x;
//   * RSA-1024 signing with the windowed Montgomery kernel >= 1.25x over
//     the binary square-and-multiply ladder.
//
// CI runs this as the bench-smoke speedup gate; a regression that drops a
// fast path below its floor fails the build instead of shipping silently.
// Pass --no-gate to measure without enforcing (e.g. on loaded machines).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "crypto/biguint.hpp"
#include "crypto/chained_hash.hpp"
#include "crypto/drbg.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"
#include "scpu/key_cache.hpp"

namespace {

using namespace worm;
using common::Bytes;

// Defeats dead-code elimination without a benchmark framework.
volatile std::uint32_t g_sink = 0;

/// Ops/sec over a ~250ms wall-clock window (after one warm-up call, which
/// also resolves first-use backend dispatch).
template <typename F>
double time_ops_per_sec(F&& fn) {
  using clock = std::chrono::steady_clock;
  fn();
  auto t0 = clock::now();
  std::size_t iters = 0;
  double elapsed = 0.0;
  do {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(clock::now() - t0).count();
  } while (elapsed < 0.25 || iters < 4);
  return static_cast<double>(iters) / elapsed;
}

double sha_ops(crypto::Sha256Backend b, const Bytes& data) {
  crypto::Sha256::force_backend(b);
  double ops = time_ops_per_sec([&] {
    crypto::Sha256::Digest d = crypto::Sha256::hash(data);
    g_sink = g_sink + d[0];
  });
  crypto::Sha256::force_backend(crypto::Sha256Backend::kAuto);
  return ops;
}

const char* backend_name(crypto::Sha256Backend b) {
  switch (b) {
    case crypto::Sha256Backend::kShaNi: return "shani";
    case crypto::Sha256Backend::kScalar: return "scalar";
    case crypto::Sha256Backend::kPortable: return "portable";
    case crypto::Sha256Backend::kAuto: break;
  }
  return "auto";
}

struct Gate {
  std::string name;
  double value;
  double floor;
};

}  // namespace

int main(int argc, char** argv) {
  bool enforce = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-gate") == 0) enforce = false;
  }

  bench::print_header(
      "crypto wall-clock: SHA-256 backends, 4-lane hashing, windowed "
      "Montgomery RSA",
      "substrate for every signature/witness cost in the repo (not a paper "
      "figure)");

  std::vector<bench::BenchRow> rows;
  std::vector<Gate> gates;

  crypto::Sha256Backend active = crypto::Sha256::active_backend();
  std::printf("dispatched SHA-256 backend: %s\n\n", backend_name(active));

  // --- SHA-256: each backend through the same interface ---------------------
  const Bytes small(1024, 0xab);
  const Bytes big(65536, 0xab);
  double auto_1k = 0, auto_64k = 0, portable_64k = 0, scalar_64k = 0;
  for (crypto::Sha256Backend b :
       {crypto::Sha256Backend::kAuto, crypto::Sha256Backend::kScalar,
        crypto::Sha256Backend::kPortable}) {
    double ops1k = sha_ops(b, small);
    double ops64k = sha_ops(b, big);
    const char* name =
        b == crypto::Sha256Backend::kAuto ? backend_name(active)
                                          : backend_name(b);
    std::printf("  sha256 %-8s  %8.1f MB/s @1KiB   %8.1f MB/s @64KiB\n", name,
                ops1k * 1024 / 1e6, ops64k * 65536 / 1e6);
    rows.push_back({std::string("sha256_") + name + "_1k", 1, ops1k, 0, 0});
    rows.push_back({std::string("sha256_") + name + "_64k", 1, ops64k, 0, 0});
    if (b == crypto::Sha256Backend::kAuto) {
      auto_1k = ops1k;
      auto_64k = ops64k;
    } else if (b == crypto::Sha256Backend::kPortable) {
      portable_64k = ops64k;
    } else {
      scalar_64k = ops64k;
    }
  }
  (void)auto_1k;
  if (active == crypto::Sha256Backend::kShaNi) {
    gates.push_back({"sha256_shani_vs_portable_64k", auto_64k / portable_64k,
                     2.0});
  } else {
    gates.push_back({"sha256_scalar_vs_portable_64k",
                     scalar_64k / portable_64k, 1.2});
  }

  // --- 4-lane multi-buffer hashing vs four sequential hashes ----------------
  {
    Bytes lanes_data[4] = {Bytes(4096, 1), Bytes(4096, 2), Bytes(4096, 3),
                           Bytes(4096, 4)};
    common::ByteView in[4] = {lanes_data[0], lanes_data[1], lanes_data[2],
                              lanes_data[3]};
    double four_seq = time_ops_per_sec([&] {
      for (const Bytes& b : lanes_data) {
        crypto::Sha256::Digest d = crypto::Sha256::hash(b);
        g_sink = g_sink + d[0];
      }
    });
    double four_wide = time_ops_per_sec([&] {
      crypto::Sha256::Digest out[4];
      crypto::Sha256::hash4(in, out);
      g_sink = g_sink + out[0][0];
    });
    std::printf("\n  hash4 (4x4KiB)   %8.1f sets/s   sequential %8.1f "
                "sets/s   (%.2fx)\n",
                four_wide, four_seq, four_wide / four_seq);
    rows.push_back({"sha256_hash4_4x4k", 1, four_wide, 0, 0});
    rows.push_back({"sha256_seq4_4x4k", 1, four_seq, 0, 0});
  }

  // --- RSA sign/verify, windowed vs binary mod_exp --------------------------
  std::printf("\n");
  const Bytes msg = common::to_bytes("bench message for signing");
  double sign_1024_windowed = 0, sign_1024_binary = 0;
  for (std::size_t bits : {std::size_t{512}, std::size_t{1024},
                           std::size_t{2048}}) {
    const crypto::RsaPrivateKey& key = scpu::cached_rsa_key(0xbe7c, bits);
    crypto::RsaPublicKey pub = key.public_key();
    Bytes sig = crypto::rsa_sign(key, msg);

    crypto::set_mod_exp_strategy(crypto::ModExpStrategy::kWindowed);
    double sign_w = time_ops_per_sec([&] {
      Bytes s = crypto::rsa_sign(key, msg);
      g_sink = g_sink + s[0];
    });
    double verify_w = time_ops_per_sec([&] {
      g_sink = g_sink + (crypto::rsa_verify(pub, msg, sig) ? 1u : 0u);
    });
    crypto::set_mod_exp_strategy(crypto::ModExpStrategy::kBinary);
    double sign_b = time_ops_per_sec([&] {
      Bytes s = crypto::rsa_sign(key, msg);
      g_sink = g_sink + s[0];
    });
    crypto::set_mod_exp_strategy(crypto::ModExpStrategy::kWindowed);

    std::printf("  rsa-%-4zu sign %8.1f/s (binary %8.1f/s, %.2fx)   verify "
                "%8.1f/s\n",
                bits, sign_w, sign_b, sign_w / sign_b, verify_w);
    std::string p = "rsa" + std::to_string(bits);
    rows.push_back({p + "_sign_windowed", 1, sign_w, 0, 0});
    rows.push_back({p + "_sign_binary", 1, sign_b, 0, 0});
    rows.push_back({p + "_verify", 1, verify_w, 0, 0});
    if (bits == 1024) {
      sign_1024_windowed = sign_w;
      sign_1024_binary = sign_b;
    }
  }
  gates.push_back({"rsa1024_sign_windowed_vs_binary",
                   sign_1024_windowed / sign_1024_binary, 1.25});

  // --- raw mod_exp, windowed vs binary (the kernel itself) ------------------
  std::printf("\n");
  for (std::size_t bits : {std::size_t{512}, std::size_t{1024}}) {
    crypto::Drbg rng(7);
    crypto::BigUInt m = rng.big_with_bits(bits);
    if (m.is_even()) m = m + crypto::BigUInt(1);
    crypto::BigUInt base = rng.big_below(m);
    crypto::BigUInt exp = rng.big_with_bits(bits);
    crypto::MontgomeryCtx ctx(m);
    double windowed = time_ops_per_sec([&] {
      g_sink = g_sink +
               static_cast<std::uint32_t>(ctx.mod_exp(base, exp).low_u64());
    });
    double binary = time_ops_per_sec([&] {
      g_sink = g_sink + static_cast<std::uint32_t>(
                            ctx.mod_exp_binary(base, exp).low_u64());
    });
    std::printf("  mod_exp-%-4zu windowed %8.1f/s   binary %8.1f/s   "
                "(%.2fx)\n",
                bits, windowed, binary, windowed / binary);
    std::string p = "modexp" + std::to_string(bits);
    rows.push_back({p + "_windowed", 1, windowed, 0, 0});
    rows.push_back({p + "_binary", 1, binary, 0, 0});
  }

  bench::write_bench_json("crypto_wallclock", rows);

  // --- speedup gates --------------------------------------------------------
  bool failed = false;
  std::printf("\nspeedup gates%s:\n", enforce ? "" : " (not enforced)");
  for (const Gate& g : gates) {
    bool ok = g.value >= g.floor;
    std::printf("  [%s] %-36s %.2fx (floor %.2fx)\n", ok ? "ok" : "FAIL",
                g.name.c_str(), g.value, g.floor);
    if (!ok) failed = true;
  }
  if (enforce && failed) {
    std::fprintf(stderr, "\nbench_crypto_wallclock: speedup gate failed\n");
    return 1;
  }
  return 0;
}
