// Ablation: the paper's O(1) windowed serial-number authentication vs the
// "straight-forward choice" of a Merkle tree maintained in the SCPU (§2.3,
// §4.1 "No Hash-Tree Authentication"). Both run under the identical IBM 4764
// cost model; the metric is simulated SCPU time per operation as the store
// grows.
#include <cstdio>

#include "baseline/merkle_store.hpp"
#include "bench_util.hpp"

using namespace worm;

namespace {

struct Costs {
  double write_us = 0;
  double expire_us = 0;
};

Costs measure_windowed(std::size_t prefill) {
  core::StoreConfig sc;
  sc.hash_mode = core::HashMode::kScpuHash;  // same trust level as baseline
  bench::BenchRig rig(bench::bench_fw_config(), sc);
  common::Bytes payload(1024, 0x5a);
  core::Attr attr;
  attr.retention = common::Duration::years(5);
  // Windowed design cost is size-independent; a token prefill shows that.
  for (std::size_t i = 0; i < std::min<std::size_t>(prefill, 64); ++i) {
    (void)rig.store.write({.payloads = {payload}, .attr = attr});
  }

  const std::size_t n = 64;
  common::Duration b0 = rig.device.busy_time();
  core::Attr expiring;
  expiring.retention = common::Duration::hours(1);
  std::vector<core::Sn> sns;
  for (std::size_t i = 0; i < n; ++i) {
    sns.push_back(rig.store.write({.payloads = {payload}, .attr = expiring}));
  }
  double write_us =
      (rig.device.busy_time() - b0).to_seconds_f() * 1e6 / static_cast<double>(n);

  b0 = rig.device.busy_time();
  rig.clock.advance(common::Duration::hours(2));  // RM deletes the n records
  double expire_us = (rig.device.busy_time() - b0).to_seconds_f() * 1e6 /
                     static_cast<double>(n);
  return {write_us, expire_us};
}

Costs measure_merkle(std::size_t prefill) {
  common::SimClock clock;
  scpu::ScpuDevice device(clock, scpu::CostModel::ibm4764());
  storage::MemBlockDevice disk(65536, 1024, &clock);
  storage::RecordStore records(disk);
  baseline::MerkleWormStore store(clock, device, records);
  core::Attr attr;
  attr.retention = common::Duration::years(5);
  store.preload(prefill, attr);

  const std::size_t n = 64;
  common::Bytes payload(1024, 0x5a);
  common::Duration b0 = device.busy_time();
  for (std::size_t i = 0; i < n; ++i) (void)store.write(payload, attr);
  double write_us =
      (device.busy_time() - b0).to_seconds_f() * 1e6 / static_cast<double>(n);

  b0 = device.busy_time();
  for (std::size_t i = 0; i < n; ++i) {
    store.expire(static_cast<core::Sn>(prefill / 2 + i));  // interior leaves
  }
  double expire_us = (device.busy_time() - b0).to_seconds_f() * 1e6 /
                     static_cast<double>(n);
  return {write_us, expire_us};
}

}  // namespace

int main() {
  bench::print_header(
      "Windowed O(1) authentication vs Merkle-tree baseline (SCPU us/op)",
      "§2.3/§4.1: Merkle updates cost O(log n) in the slow SCPU; the windowed "
      "scheme is O(1)");

  std::printf("%10s | %13s %14s | %13s %14s\n", "store size", "windowed wr",
              "windowed expire", "merkle wr", "merkle expire");
  for (std::size_t n : {1'000u, 10'000u, 100'000u, 1'000'000u}) {
    Costs w = measure_windowed(n);
    Costs m = measure_merkle(n);
    std::printf("%10zu | %10.0f us %11.0f us | %10.0f us %11.0f us\n", n,
                w.write_us, w.expire_us, m.write_us, m.expire_us);
  }
  std::printf("\nWindowed costs are flat in store size; the Merkle columns grow\n"
              "with log(n) hash work (plus the unavoidable root re-sign), and\n"
              "expiries pay the full path. At compliance-store sizes the gap\n"
              "is the difference between 'SCPU keeps up' and 'SCPU is the\n"
              "bottleneck on every operation'.\n");
  return 0;
}
